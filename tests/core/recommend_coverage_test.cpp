// Algo-coverage grid for the dispatch recommender: over a full
// (N, K, batch, hints) sweep, recommend_algorithm must return a *concrete*
// algorithm that can legally serve the request (k <= max_k(algo, n)), so the
// serving planner can never receive an unservable plan.  The recommendation
// is a pure function of the shape — it never inspects the key values — so
// legality over this grid holds for every data distribution by construction
// (the soak and integration suites cover uniform/normal/adversarial data).

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"

namespace topk {
namespace {

TEST(RecommendCoverage, AlwaysReturnsServablePlan) {
  const std::size_t ns[] = {1u << 8,  1u << 10, 1u << 12, 1u << 14,
                            1u << 16, 1u << 20, 1u << 24};
  const std::size_t batches[] = {1, 10, 100};
  for (const std::size_t n : ns) {
    const std::size_t ks[] = {1,    2,    16,       100,  255, 256,
                              257,  1024, 2048,     2049, 4096,
                              n / 2, n - 1, n};
    for (const std::size_t k : ks) {
      if (k == 0 || k > n) continue;
      for (const std::size_t batch : batches) {
        for (const bool fly : {false, true}) {
          WorkloadHints hints;
          hints.on_the_fly = fly;
          hints.batch = batch;
          if (fly && k > 2048) {
            // Documented unsatisfiable case: on-the-fly is a hard
            // constraint only the queue family meets, and it caps at 2048.
            EXPECT_THROW((void)recommend_algorithm(n, k, hints),
                         std::invalid_argument)
                << "n=" << n << " k=" << k;
            continue;
          }
          const Algo rec = recommend_algorithm(n, k, hints);
          EXPECT_NE(rec, Algo::kAuto)
              << "recommender must resolve to a concrete algorithm";
          EXPECT_LE(k, max_k(rec, n))
              << "unservable plan " << algo_name(rec) << " for n=" << n
              << " k=" << k << " batch=" << batch << " fly=" << fly;
          if (fly) {
            EXPECT_EQ(rec, Algo::kGridSelect)
                << "on-the-fly must pick the shared-queue family";
          }
        }
      }
    }
  }
}

TEST(RecommendCoverage, ResolveAlgoIsIdentityForConcreteAlgos) {
  for (const Algo algo : all_algorithms()) {
    EXPECT_EQ(resolve_algo(algo, 1 << 16, 64, 8), algo);
  }
}

TEST(RecommendCoverage, ResolveAlgoExpandsAuto) {
  const Algo resolved = resolve_algo(Algo::kAuto, 1 << 20, 64, 32);
  EXPECT_NE(resolved, Algo::kAuto);
  WorkloadHints hints;
  hints.batch = 32;
  EXPECT_EQ(resolved, recommend_algorithm(1 << 20, 64, hints));
}

TEST(RecommendCoverage, AutoSpellingRoundTrips) {
  const auto parsed = algo_from_string("auto");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Algo::kAuto);
  EXPECT_EQ(algo_name(Algo::kAuto), "Auto");
  // kAuto has no k ceiling of its own: the recommender guarantees legality.
  EXPECT_EQ(max_k(Algo::kAuto, 1 << 20), std::size_t{1} << 20);
}

TEST(RecommendCoverage, RejectsDegenerateShapes) {
  EXPECT_THROW((void)recommend_algorithm(0, 1), std::invalid_argument);
  EXPECT_THROW((void)recommend_algorithm(100, 0), std::invalid_argument);
  EXPECT_THROW((void)recommend_algorithm(100, 101), std::invalid_argument);
  WorkloadHints zero_batch;
  zero_batch.batch = 0;
  EXPECT_THROW((void)recommend_algorithm(100, 10, zero_batch),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk
