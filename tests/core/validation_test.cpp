// Input-validation contract of the host entry points: the serving layer
// relays these messages verbatim to clients, so every malformed call must
// raise std::invalid_argument with a message that names the entry point and
// echoes the offending values — never an assert or a silent wrong answer.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"

namespace topk {
namespace {

std::string message_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(SelectBatchValidation, EmptyBatch) {
  simgpu::Device dev;
  const auto data = data::uniform_values(100, 1);
  const std::string msg = message_of(
      [&] { (void)select_batch(dev, data, 0, 100, 5, Algo::kAirTopk); });
  EXPECT_NE(msg.find("select_batch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("batch must be > 0"), std::string::npos) << msg;
}

TEST(SelectBatchValidation, ZeroK) {
  simgpu::Device dev;
  const auto data = data::uniform_values(100, 2);
  const std::string msg = message_of(
      [&] { (void)select_batch(dev, data, 1, 100, 0, Algo::kAirTopk); });
  EXPECT_NE(msg.find("select_batch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("k must be >= 1"), std::string::npos) << msg;
}

TEST(SelectBatchValidation, KLargerThanN) {
  simgpu::Device dev;
  const auto data = data::uniform_values(200, 3);
  const std::string msg = message_of(
      [&] { (void)select_batch(dev, data, 2, 100, 101, Algo::kAirTopk); });
  EXPECT_NE(msg.find("k=101"), std::string::npos) << msg;
  EXPECT_NE(msg.find("n=100"), std::string::npos) << msg;
}

TEST(SelectBatchValidation, MismatchedRowLengths) {
  simgpu::Device dev;
  // 3 rows of 100 claimed, but only 250 keys supplied.
  const auto data = data::uniform_values(250, 4);
  const std::string msg = message_of(
      [&] { (void)select_batch(dev, data, 3, 100, 5, Algo::kAirTopk); });
  EXPECT_NE(msg.find("250"), std::string::npos) << msg;
  EXPECT_NE(msg.find("300"), std::string::npos) << msg;
  EXPECT_NE(msg.find("mismatched row lengths"), std::string::npos) << msg;
}

TEST(SelectBatchValidation, ZeroRowLength) {
  simgpu::Device dev;
  const std::vector<float> data;
  const std::string msg = message_of(
      [&] { (void)select_batch(dev, data, 1, 0, 1, Algo::kAirTopk); });
  EXPECT_NE(msg.find("row length n must be > 0"), std::string::npos) << msg;
}

TEST(SelectValidation, EmptyInput) {
  simgpu::Device dev;
  const std::vector<float> data;
  EXPECT_THROW((void)select(dev, data, 1, Algo::kAirTopk),
               std::invalid_argument);
}

TEST(SelectValidation, KLargerThanInput) {
  simgpu::Device dev;
  const auto data = data::uniform_values(10, 5);
  const std::string msg =
      message_of([&] { (void)select(dev, data, 11, Algo::kAirTopk); });
  EXPECT_NE(msg.find("select"), std::string::npos) << msg;
  EXPECT_NE(msg.find("k=11"), std::string::npos) << msg;
}

TEST(SelectValidation, ValidationPrecedesExecutionForAuto) {
  // kAuto must not mask validation: the recommender itself rejects the
  // degenerate shape before any device work happens.
  simgpu::Device dev;
  const auto data = data::uniform_values(10, 6);
  EXPECT_THROW((void)select(dev, data, 0, Algo::kAuto),
               std::invalid_argument);
  EXPECT_THROW((void)select_batch(dev, data, 0, 10, 2, Algo::kAuto),
               std::invalid_argument);
}

TEST(SelectValidation, AutoSelectsAndVerifies) {
  simgpu::Device dev;
  const auto data = data::uniform_values(4096, 7);
  const SelectResult r = select(dev, data, 16, Algo::kAuto);
  EXPECT_TRUE(verify_topk(data, 16, r).empty());
}

TEST(SelectValidation, AutoHonorsGreatest) {
  // Regression guard: kAuto must resolve before the greatest-K negation
  // decision, otherwise AIR would double-negate.
  simgpu::Device dev;
  const auto data = data::normal_values(2048, 8);
  SelectOptions opt;
  opt.greatest = true;
  const SelectResult r = select(dev, data, 10, Algo::kAuto, opt);
  std::vector<float> want(data.begin(), data.end());
  std::sort(want.begin(), want.end(), std::greater<>());
  std::vector<float> got = r.values;
  std::sort(got.begin(), got.end(), std::greater<>());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i], want[i]) << "position " << i;
  }
}

}  // namespace
}  // namespace topk
