#include "data/ann_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace topk::data {
namespace {

TEST(AnnDataset, DeepLikeVectorsAreUnitNorm) {
  const AnnDataset ds = make_deep_like(500, 1);
  EXPECT_EQ(ds.dim, 96u);
  EXPECT_EQ(ds.count, 500u);
  for (std::size_t i = 0; i < ds.count; ++i) {
    double norm = 0.0;
    const float* row = ds.vector(i);
    for (std::size_t d = 0; d < ds.dim; ++d) norm += double(row[d]) * row[d];
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4) << "vector " << i;
  }
}

TEST(AnnDataset, SiftLikeVectorsAreNonNegativeAndClipped) {
  const AnnDataset ds = make_sift_like(500, 2);
  EXPECT_EQ(ds.dim, 128u);
  float max_seen = 0.0f;
  for (float v : ds.vectors) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 218.0f);
    max_seen = std::max(max_seen, v);
  }
  EXPECT_GT(max_seen, 100.0f) << "heavy tail should reach the clip region";
}

TEST(AnnDataset, DistancesMatchDirectComputation) {
  const AnnDataset ds = make_deep_like(50, 3, 8);
  const auto queries = make_queries(ds, 1, 4);
  const auto dist = l2_distances(ds, queries.data(), 50);
  ASSERT_EQ(dist.size(), 50u);
  for (std::size_t i = 0; i < 10; ++i) {
    double want = 0.0;
    for (std::size_t d = 0; d < ds.dim; ++d) {
      const double diff = double(ds.vector(i)[d]) - queries[d];
      want += diff * diff;
    }
    EXPECT_NEAR(dist[i], want, 1e-4) << i;
  }
}

TEST(AnnDataset, DistancesAreNonNegativeAndNarrow) {
  // Unit-norm vectors: squared distances live in [0, 4] — the narrow-range
  // profile that motivates the adaptive strategy.
  const AnnDataset ds = make_deep_like(2000, 5);
  const auto queries = make_queries(ds, 1, 6);
  const auto dist = l2_distances(ds, queries.data(), ds.count);
  for (float d : dist) {
    EXPECT_GE(d, 0.0f);
    EXPECT_LE(d, 4.0f + 1e-3f);
  }
}

TEST(AnnDataset, QueriesFollowDatasetDistribution) {
  const AnnDataset sift = make_sift_like(10, 7);
  const auto q = make_queries(sift, 3, 8);
  ASSERT_EQ(q.size(), 3 * sift.dim);
  for (float v : q) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 218.0f);
  }
  const AnnDataset deep = make_deep_like(10, 9);
  const auto qd = make_queries(deep, 1, 10);
  double norm = 0.0;
  for (std::size_t d = 0; d < deep.dim; ++d) norm += double(qd[d]) * qd[d];
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

TEST(AnnDataset, RejectsOversizedN) {
  const AnnDataset ds = make_deep_like(10, 11);
  const auto q = make_queries(ds, 1, 12);
  EXPECT_THROW(l2_distances(ds, q.data(), 11), std::invalid_argument);
}

}  // namespace
}  // namespace topk::data
