#include "data/distributions.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace topk::data {
namespace {

TEST(Distributions, UniformStaysInHalfOpenUnitRange) {
  const auto v = uniform_values(100000, 1);
  ASSERT_EQ(v.size(), 100000u);
  for (float x : v) {
    EXPECT_GT(x, 0.0f);
    EXPECT_LE(x, 1.0f);
  }
  const double mean = std::accumulate(v.begin(), v.end(), 0.0) / v.size();
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(Distributions, NormalHasZeroMeanUnitStd) {
  const auto v = normal_values(200000, 2);
  const double mean = std::accumulate(v.begin(), v.end(), 0.0) / v.size();
  double var = 0.0;
  for (float x : v) var += (x - mean) * (x - mean);
  var /= v.size();
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 1.0, 0.02);
}

TEST(Distributions, AdversarialSharesLeadingBits) {
  for (int m : {10, 20, 28}) {
    const auto v = radix_adversarial_values(10000, m, 3);
    const std::uint32_t ref = std::bit_cast<std::uint32_t>(v[0]) >> (32 - m);
    for (float x : v) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x) >> (32 - m), ref)
          << "M=" << m;
    }
  }
}

TEST(Distributions, AdversarialStillHasEntropyInLowBits) {
  const auto v = radix_adversarial_values(10000, 20, 4);
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  EXPECT_LT(*lo, *hi) << "values must not all collapse to one bit pattern";
}

TEST(Distributions, AdversarialRejectsBadM) {
  EXPECT_THROW(radix_adversarial_values(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(radix_adversarial_values(10, 32, 1), std::invalid_argument);
}

TEST(Distributions, DeterministicInSeed) {
  EXPECT_EQ(uniform_values(1000, 7), uniform_values(1000, 7));
  EXPECT_NE(uniform_values(1000, 7), uniform_values(1000, 8));
  EXPECT_EQ(normal_values(1000, 7), normal_values(1000, 7));
  EXPECT_EQ(radix_adversarial_values(1000, 20, 7),
            radix_adversarial_values(1000, 20, 7));
}

TEST(Distributions, GenerateDispatchesBySpec) {
  EXPECT_EQ(generate({Distribution::kUniform, 0}, 100, 5),
            uniform_values(100, 5));
  EXPECT_EQ(generate({Distribution::kNormal, 0}, 100, 5),
            normal_values(100, 5));
  EXPECT_EQ(generate({Distribution::kAdversarial, 12}, 100, 5),
            radix_adversarial_values(100, 12, 5));
}

TEST(Distributions, SpecNames) {
  EXPECT_EQ((DistributionSpec{Distribution::kUniform, 0}).name(), "uniform");
  EXPECT_EQ((DistributionSpec{Distribution::kNormal, 0}).name(), "normal");
  EXPECT_EQ((DistributionSpec{Distribution::kAdversarial, 20}).name(),
            "adversarial(M=20)");
}

TEST(Distributions, UniformU32CoversRange) {
  const auto v = uniform_u32(100000, 9);
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  EXPECT_LT(*lo, 1u << 28);
  EXPECT_GT(*hi, 0xF0000000u);
}

}  // namespace
}  // namespace topk::data
