// Deterministic soak of the serving layer: fixed-seed mixed shapes, k's and
// deadlines, submitted as fast as the host can, then drained via shutdown.
// Asserts the service's externally visible contract:
//   * every future resolves (no request is ever dropped),
//   * every completed result equals the direct select() reference,
//   * the counters reconcile: submitted == accepted + rejected and
//     accepted == completed + timed_out + failed,
//   * the batch-size histogram accounts for every completed request.
// Run with 1 worker (fully deterministic batch composition up to timing) and
// with 4 workers (the concurrent multi-device path TSan and simcheck cover).

#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <iterator>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk::serve {
namespace {

using std::chrono::microseconds;

struct SoakQuery {
  std::vector<float> keys;
  std::size_t k = 0;
  bool expect_timeout = false;
  std::future<QueryResult> fut;
};

void run_soak(std::size_t num_devices) {
  ServiceConfig cfg;
  cfg.num_devices = num_devices;
  cfg.max_batch = 8;
  cfg.max_wait = microseconds(300);
  cfg.admission_capacity = 4096;  // never reject in this soak
  TopkService svc(cfg);

  std::mt19937 rng(0xC0FFEE);
  const std::size_t shapes[] = {512, 1000, 2048, 4096};
  std::vector<SoakQuery> queries(120);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SoakQuery& q = queries[i];
    const std::size_t n = shapes[rng() % std::size(shapes)];
    q.keys = data::uniform_values(n, 7000 + i);
    q.k = 1 + rng() % (n / 2);
    std::optional<microseconds> deadline;
    const unsigned roll = rng() % 10;
    if (roll == 0) {
      // Already expired at submission: deterministically times out.
      deadline = microseconds(0);
      q.expect_timeout = true;
    } else if (roll == 1) {
      deadline = std::chrono::duration_cast<microseconds>(
          std::chrono::seconds(30));  // generous: always completes
    }
    q.fut = svc.submit(std::vector<float>(q.keys), q.k, deadline);
  }

  svc.shutdown();  // drains every bucket and in-flight batch

  std::size_t ok = 0, timed_out = 0;
  for (SoakQuery& q : queries) {
    ASSERT_EQ(q.fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "a future did not resolve by shutdown";
    const QueryResult r = q.fut.get();
    if (q.expect_timeout) {
      EXPECT_EQ(r.status, QueryStatus::kTimedOut);
    } else {
      ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
      ASSERT_EQ(r.topk.values.size(), q.k);
      const std::string err = verify_topk(q.keys, q.k, r.topk);
      EXPECT_TRUE(err.empty()) << err;
      EXPECT_GE(r.batch_rows, 1u);
      EXPECT_LE(r.batch_rows, cfg.max_batch);
      EXPECT_GT(r.device_us, 0.0);
    }
    ok += r.status == QueryStatus::kOk ? 1 : 0;
    timed_out += r.status == QueryStatus::kTimedOut ? 1 : 0;
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, queries.size());
  EXPECT_EQ(s.submitted, s.accepted + s.rejected);
  EXPECT_EQ(s.accepted, s.completed + s.timed_out + s.failed);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(s.timed_out, timed_out);
  EXPECT_EQ(s.latency.count, s.completed);

  std::uint64_t histogram_rows = 0;
  for (const auto& [rows, count] : s.batch_rows_histogram) {
    EXPECT_GE(rows, 1u);
    EXPECT_LE(rows, cfg.max_batch);
    histogram_rows += rows * count;
  }
  EXPECT_EQ(histogram_rows, s.completed);
  EXPECT_GT(s.modeled_device_us, 0.0);
}

TEST(TopkServiceSoak, SingleWorker) { run_soak(1); }

TEST(TopkServiceSoak, FourWorkers) { run_soak(4); }

// Mixed recall-SLO soak: the same steady-state shape served under hint
// recall_targets {1.0, 0.95, 0.9}.  Requests must only coalesce with their
// own SLO (a 0.9 request approximated inside a 1.0 batch would break the
// exact contract checked below), the approximate tier must actually carry
// sub-1.0 traffic when it wins the cost race, and warming one plan per SLO
// must not cost steady-state pool misses or device allocs.
TEST(TopkServiceSoak, MixedRecallHintsStayPooledAndHonorSlo) {
  ServiceConfig cfg;
  cfg.num_devices = 1;
  cfg.max_batch = 8;
  cfg.max_wait = microseconds(300);
  cfg.admission_capacity = 4096;
  // Large rows so the relaxed-SLO cost race actually picks the approximate
  // tier (at small n the two-launch overhead keeps it exact).
  const std::size_t n = std::size_t{1} << 18, k = 256, queries = 96;
  const double slos[] = {1.0, 0.95, 0.9};

  std::vector<std::vector<float>> keys(queries);
  std::vector<double> slo_of(queries);
  TopkService svc(cfg);
  std::vector<std::future<QueryResult>> futs;
  futs.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    keys[i] = data::uniform_values(n, 52000 + i);
    slo_of[i] = slos[i % std::size(slos)];
    WorkloadHints hints;
    hints.recall_target = slo_of[i];
    futs.push_back(svc.submit(std::vector<float>(keys[i]), k, std::nullopt,
                              std::nullopt, hints));
  }
  svc.shutdown();

  std::map<double, double> recall_sum;
  std::map<double, std::size_t> recall_rows;
  for (std::size_t i = 0; i < queries; ++i) {
    const QueryResult r = futs[i].get();
    ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
    ASSERT_EQ(r.topk.values.size(), k);
    if (slo_of[i] == 1.0) {
      // Exact SLO: full exact contract, which also proves no exact request
      // rode an approximate batch.
      const std::string err = verify_topk(keys[i], k, r.topk);
      EXPECT_TRUE(err.empty()) << "query " << i << ": " << err;
    } else {
      // Relaxed SLO: recall against the exact reference.  The SLO is an
      // expected-recall floor and the planner adds a guard band, so the
      // per-SLO mean must clear it; individual rows get a small allowance
      // for sampling noise (batch composition, and with it the picked
      // chunk shape, depends on flush timing).
      std::vector<float> exact(keys[i]);
      std::partial_sort(exact.begin(),
                        exact.begin() + static_cast<std::ptrdiff_t>(k),
                        exact.end());
      exact.resize(k);
      std::vector<float> got = r.topk.values;
      std::sort(got.begin(), got.end());
      std::vector<float> both;
      std::set_intersection(got.begin(), got.end(), exact.begin(),
                            exact.end(), std::back_inserter(both));
      const double recall =
          static_cast<double>(both.size()) / static_cast<double>(k);
      EXPECT_GE(recall, slo_of[i] - 0.05)
          << "query " << i << " slo " << slo_of[i];
      recall_sum[slo_of[i]] += recall;
      ++recall_rows[slo_of[i]];
    }
  }
  for (const auto& [slo, total] : recall_sum) {
    EXPECT_GE(total / static_cast<double>(recall_rows[slo]), slo)
        << "mean recall under SLO " << slo;
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, queries);
  EXPECT_GT(s.approx_queries, 0u)
      << "no batch executed on the approximate tier";
  EXPECT_LT(s.approx_queries, s.completed)
      << "exact-SLO traffic must not ride the approximate tier";
  EXPECT_GT(s.pool_hit_rate(), 0.9)
      << "pool hits " << s.pool_hits << " misses " << s.pool_misses;
  EXPECT_GT(s.plan_cache_hits, s.plan_cache_misses);
  EXPECT_EQ(s.device_allocs, 0u)
      << "worker called Device::alloc on the hot path";
}

// Steady-state execution-layer soak: one worker, one shape, many batches.
// After the first flush warms the worker's plan cache and its two pooled
// workspaces, every batch must be a plan-cache hit and every workspace bind
// a pool hit — and the worker must never call Device::alloc at all (I/O
// rides pooled segments).  The >90% hit-rate floor leaves room only for the
// cold binds.
TEST(TopkServiceSoak, SteadyStateReusesPlansAndPooledWorkspaces) {
  ServiceConfig cfg;
  cfg.num_devices = 1;
  cfg.max_batch = 8;
  cfg.max_wait = microseconds(300);
  cfg.admission_capacity = 4096;
  const std::size_t n = 2048, k = 64, queries = 160;
  std::vector<std::vector<float>> keys(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    keys[i] = data::uniform_values(n, 31000 + i);
  }

  TopkService svc(cfg);
  std::vector<std::future<QueryResult>> futs;
  futs.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    futs.push_back(svc.submit(std::vector<float>(keys[i]), k));
  }
  svc.shutdown();

  for (std::size_t i = 0; i < queries; ++i) {
    const QueryResult r = futs[i].get();
    ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
    const std::string err = verify_topk(keys[i], k, r.topk);
    EXPECT_TRUE(err.empty()) << "query " << i << ": " << err;
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, queries);
  EXPECT_GT(s.batches, 4u);  // enough flushes that steady state dominates
  EXPECT_GT(s.pool_hit_rate(), 0.9)
      << "pool hits " << s.pool_hits << " misses " << s.pool_misses;
  EXPECT_GT(s.plan_cache_hits, 0u);
  // Identical shapes: one plan per distinct batch row count, which the
  // micro-batcher caps at max_batch.
  EXPECT_LE(s.plan_cache_misses, cfg.max_batch);
  EXPECT_GT(s.plan_cache_hits, s.plan_cache_misses);
  EXPECT_EQ(s.device_allocs, 0u)
      << "worker called Device::alloc on the hot path";
  EXPECT_GT(s.pool_high_water, 0u);
}

}  // namespace
}  // namespace topk::serve
