// Deterministic soak of the serving layer: fixed-seed mixed shapes, k's and
// deadlines, submitted as fast as the host can, then drained via shutdown.
// Asserts the service's externally visible contract:
//   * every future resolves (no request is ever dropped),
//   * every completed result equals the direct select() reference,
//   * the counters reconcile: submitted == accepted + rejected and
//     accepted == completed + timed_out + failed,
//   * the batch-size histogram accounts for every completed request.
// Run with 1 worker (fully deterministic batch composition up to timing) and
// with 4 workers (the concurrent multi-device path TSan and simcheck cover).

#include "serve/service.hpp"

#include <chrono>
#include <future>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk::serve {
namespace {

using std::chrono::microseconds;

struct SoakQuery {
  std::vector<float> keys;
  std::size_t k = 0;
  bool expect_timeout = false;
  std::future<QueryResult> fut;
};

void run_soak(std::size_t num_devices) {
  ServiceConfig cfg;
  cfg.num_devices = num_devices;
  cfg.max_batch = 8;
  cfg.max_wait = microseconds(300);
  cfg.admission_capacity = 4096;  // never reject in this soak
  TopkService svc(cfg);

  std::mt19937 rng(0xC0FFEE);
  const std::size_t shapes[] = {512, 1000, 2048, 4096};
  std::vector<SoakQuery> queries(120);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SoakQuery& q = queries[i];
    const std::size_t n = shapes[rng() % std::size(shapes)];
    q.keys = data::uniform_values(n, 7000 + i);
    q.k = 1 + rng() % (n / 2);
    std::optional<microseconds> deadline;
    const unsigned roll = rng() % 10;
    if (roll == 0) {
      // Already expired at submission: deterministically times out.
      deadline = microseconds(0);
      q.expect_timeout = true;
    } else if (roll == 1) {
      deadline = std::chrono::duration_cast<microseconds>(
          std::chrono::seconds(30));  // generous: always completes
    }
    q.fut = svc.submit(std::vector<float>(q.keys), q.k, deadline);
  }

  svc.shutdown();  // drains every bucket and in-flight batch

  std::size_t ok = 0, timed_out = 0;
  for (SoakQuery& q : queries) {
    ASSERT_EQ(q.fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "a future did not resolve by shutdown";
    const QueryResult r = q.fut.get();
    if (q.expect_timeout) {
      EXPECT_EQ(r.status, QueryStatus::kTimedOut);
    } else {
      ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
      ASSERT_EQ(r.topk.values.size(), q.k);
      const std::string err = verify_topk(q.keys, q.k, r.topk);
      EXPECT_TRUE(err.empty()) << err;
      EXPECT_GE(r.batch_rows, 1u);
      EXPECT_LE(r.batch_rows, cfg.max_batch);
      EXPECT_GT(r.device_us, 0.0);
    }
    ok += r.status == QueryStatus::kOk ? 1 : 0;
    timed_out += r.status == QueryStatus::kTimedOut ? 1 : 0;
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, queries.size());
  EXPECT_EQ(s.submitted, s.accepted + s.rejected);
  EXPECT_EQ(s.accepted, s.completed + s.timed_out + s.failed);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(s.timed_out, timed_out);
  EXPECT_EQ(s.latency.count, s.completed);

  std::uint64_t histogram_rows = 0;
  for (const auto& [rows, count] : s.batch_rows_histogram) {
    EXPECT_GE(rows, 1u);
    EXPECT_LE(rows, cfg.max_batch);
    histogram_rows += rows * count;
  }
  EXPECT_EQ(histogram_rows, s.completed);
  EXPECT_GT(s.modeled_device_us, 0.0);
}

TEST(TopkServiceSoak, SingleWorker) { run_soak(1); }

TEST(TopkServiceSoak, FourWorkers) { run_soak(4); }

// Steady-state execution-layer soak: one worker, one shape, many batches.
// After the first flush warms the worker's plan cache and its two pooled
// workspaces, every batch must be a plan-cache hit and every workspace bind
// a pool hit — and the worker must never call Device::alloc at all (I/O
// rides pooled segments).  The >90% hit-rate floor leaves room only for the
// cold binds.
TEST(TopkServiceSoak, SteadyStateReusesPlansAndPooledWorkspaces) {
  ServiceConfig cfg;
  cfg.num_devices = 1;
  cfg.max_batch = 8;
  cfg.max_wait = microseconds(300);
  cfg.admission_capacity = 4096;
  const std::size_t n = 2048, k = 64, queries = 160;
  std::vector<std::vector<float>> keys(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    keys[i] = data::uniform_values(n, 31000 + i);
  }

  TopkService svc(cfg);
  std::vector<std::future<QueryResult>> futs;
  futs.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    futs.push_back(svc.submit(std::vector<float>(keys[i]), k));
  }
  svc.shutdown();

  for (std::size_t i = 0; i < queries; ++i) {
    const QueryResult r = futs[i].get();
    ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
    const std::string err = verify_topk(keys[i], k, r.topk);
    EXPECT_TRUE(err.empty()) << "query " << i << ": " << err;
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, queries);
  EXPECT_GT(s.batches, 4u);  // enough flushes that steady state dominates
  EXPECT_GT(s.pool_hit_rate(), 0.9)
      << "pool hits " << s.pool_hits << " misses " << s.pool_misses;
  EXPECT_GT(s.plan_cache_hits, 0u);
  // Identical shapes: one plan per distinct batch row count, which the
  // micro-batcher caps at max_batch.
  EXPECT_LE(s.plan_cache_misses, cfg.max_batch);
  EXPECT_GT(s.plan_cache_hits, s.plan_cache_misses);
  EXPECT_EQ(s.device_allocs, 0u)
      << "worker called Device::alloc on the hot path";
  EXPECT_GT(s.pool_high_water, 0u);
}

}  // namespace
}  // namespace topk::serve
