#include "serve/service.hpp"

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk::serve {
namespace {

using std::chrono::microseconds;

std::vector<float> keys_for(std::size_t n, std::uint64_t seed) {
  return data::uniform_values(n, seed);
}

/// Flush-on-full only: buckets never age out, so batch composition is
/// deterministic regardless of scheduling.
ServiceConfig never_age_config() {
  ServiceConfig cfg;
  cfg.num_devices = 1;
  cfg.max_wait = std::chrono::duration_cast<microseconds>(
      std::chrono::seconds(600));
  return cfg;
}

TEST(TopkService, SingleRequestMatchesDirectSelect) {
  ServiceConfig cfg;
  cfg.max_batch = 1;
  TopkService svc(cfg);
  const auto keys = keys_for(4096, 1);
  auto fut = svc.submit(std::vector<float>(keys), 64);
  const QueryResult r = fut.get();
  ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(r.batch_rows, 1u);
  EXPECT_GT(r.device_us, 0.0);
  EXPECT_TRUE(verify_topk(keys, 64, r.topk).empty())
      << verify_topk(keys, 64, r.topk);
}

TEST(TopkService, CoalescesToFullBatches) {
  ServiceConfig cfg = never_age_config();
  cfg.max_batch = 4;
  TopkService svc(cfg);
  std::vector<std::vector<float>> inputs;
  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(keys_for(1024, 10 + static_cast<std::uint64_t>(i)));
    futs.push_back(svc.submit(std::vector<float>(inputs.back()), 16));
  }
  for (int i = 0; i < 8; ++i) {
    const QueryResult r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
    EXPECT_EQ(r.batch_rows, 4u) << "request " << i;
    EXPECT_TRUE(
        verify_topk(inputs[static_cast<std::size_t>(i)], 16, r.topk).empty());
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.batch_rows_histogram.at(4), 2u);
  EXPECT_EQ(s.completed, 8u);
}

TEST(TopkService, KBucketCoalescingTrimsPerRequest) {
  ServiceConfig cfg = never_age_config();
  cfg.max_batch = 2;
  TopkService svc(cfg);
  const auto a = keys_for(1000, 20);
  const auto b = keys_for(1000, 21);
  // k=5 and k=7 share the k_exec=8 bucket; each result is trimmed back.
  auto fa = svc.submit(std::vector<float>(a), 5);
  auto fb = svc.submit(std::vector<float>(b), 7);
  const QueryResult ra = fa.get();
  const QueryResult rb = fb.get();
  ASSERT_EQ(ra.status, QueryStatus::kOk) << ra.error;
  ASSERT_EQ(rb.status, QueryStatus::kOk) << rb.error;
  EXPECT_EQ(ra.batch_rows, 2u);
  EXPECT_EQ(rb.batch_rows, 2u);
  EXPECT_EQ(ra.topk.values.size(), 5u);
  EXPECT_EQ(rb.topk.values.size(), 7u);
  EXPECT_TRUE(verify_topk(a, 5, ra.topk).empty()) << verify_topk(a, 5, ra.topk);
  EXPECT_TRUE(verify_topk(b, 7, rb.topk).empty()) << verify_topk(b, 7, rb.topk);
}

TEST(TopkService, DifferentShapesDoNotCoalesce) {
  ServiceConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait = microseconds(500);
  TopkService svc(cfg);
  auto fa = svc.submit(keys_for(1024, 30), 16);
  auto fb = svc.submit(keys_for(2048, 31), 16);
  const QueryResult ra = fa.get();
  const QueryResult rb = fb.get();
  ASSERT_EQ(ra.status, QueryStatus::kOk) << ra.error;
  ASSERT_EQ(rb.status, QueryStatus::kOk) << rb.error;
  EXPECT_EQ(ra.batch_rows, 1u);
  EXPECT_EQ(rb.batch_rows, 1u);
}

TEST(TopkService, AutoPlannerFollowsRecommendation) {
  ServiceConfig cfg;
  cfg.max_batch = 1;
  TopkService svc(cfg);
  // Small k on a large row -> GridSelect per the paper's §5.1 guidelines.
  const QueryResult small_k = svc.submit(keys_for(1 << 16, 40), 16).get();
  ASSERT_EQ(small_k.status, QueryStatus::kOk) << small_k.error;
  EXPECT_EQ(small_k.algo, Algo::kGridSelect);
  // Large k -> AIR Top-K.
  const QueryResult large_k = svc.submit(keys_for(1 << 16, 41), 512).get();
  ASSERT_EQ(large_k.status, QueryStatus::kOk) << large_k.error;
  EXPECT_EQ(large_k.algo, Algo::kAirTopk);
  // Whatever the plan, it must be legal for the padded k.
  EXPECT_LE(std::size_t{16}, max_k(small_k.algo, 1 << 16));
  EXPECT_LE(std::size_t{512}, max_k(large_k.algo, 1 << 16));
}

TEST(TopkService, ExplicitAlgoOverrideIsHonored) {
  ServiceConfig cfg;
  cfg.max_batch = 1;
  TopkService svc(cfg);
  const auto keys = keys_for(4096, 50);
  const QueryResult r =
      svc.submit(std::vector<float>(keys), 32, std::nullopt, Algo::kSort)
          .get();
  ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(r.algo, Algo::kSort);
  EXPECT_TRUE(verify_topk(keys, 32, r.topk).empty());
}

TEST(TopkService, UnservableOverrideFailsWithDiagnostic) {
  ServiceConfig cfg;
  cfg.max_batch = 1;
  TopkService svc(cfg);
  // Bitonic Top-K caps at k=256; k=300 pads to 512 and cannot be served.
  const QueryResult r =
      svc.submit(keys_for(4096, 51), 300, std::nullopt, Algo::kBitonicTopk)
          .get();
  EXPECT_EQ(r.status, QueryStatus::kFailed);
  EXPECT_NE(r.error.find("cannot serve"), std::string::npos) << r.error;
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.failed, 1u);
}

TEST(TopkService, RejectsWhenAdmissionQueueFull) {
  ServiceConfig cfg = never_age_config();
  cfg.max_batch = 100;  // never flushes on size during this test
  cfg.admission_capacity = 2;
  TopkService svc(cfg);
  auto f1 = svc.submit(keys_for(1024, 60), 8);
  auto f2 = svc.submit(keys_for(1024, 61), 8);
  auto f3 = svc.submit(keys_for(1024, 62), 8);
  const QueryResult r3 = f3.get();  // rejected immediately
  EXPECT_EQ(r3.status, QueryStatus::kRejected);
  EXPECT_NE(r3.error.find("admission queue full"), std::string::npos)
      << r3.error;
  svc.shutdown();  // drains the two admitted requests
  EXPECT_EQ(f1.get().status, QueryStatus::kOk);
  EXPECT_EQ(f2.get().status, QueryStatus::kOk);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(TopkService, ExpiredDeadlineTimesOut) {
  ServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = microseconds(200);
  TopkService svc(cfg);
  // deadline 0: already expired when the batch reaches a worker.
  const QueryResult r =
      svc.submit(keys_for(1024, 70), 8, microseconds(0)).get();
  EXPECT_EQ(r.status, QueryStatus::kTimedOut);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.completed, 0u);
}

TEST(TopkService, ShutdownDrainsPartialBuckets) {
  ServiceConfig cfg = never_age_config();
  cfg.max_batch = 100;
  TopkService svc(cfg);
  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 3; ++i) {
    futs.push_back(svc.submit(keys_for(2048, 80 + static_cast<std::uint64_t>(i)), 10));
  }
  svc.shutdown();
  for (auto& f : futs) {
    const QueryResult r = f.get();
    EXPECT_EQ(r.status, QueryStatus::kOk) << r.error;
    EXPECT_EQ(r.batch_rows, 3u);  // drained as one final partial batch
  }
}

TEST(TopkService, SubmitAfterShutdownIsRejected) {
  TopkService svc;
  svc.shutdown();
  const QueryResult r = svc.submit(keys_for(512, 90), 4).get();
  EXPECT_EQ(r.status, QueryStatus::kRejected);
  EXPECT_NE(r.error.find("shut down"), std::string::npos) << r.error;
}

TEST(TopkService, SubmitValidatesArguments) {
  TopkService svc;
  EXPECT_THROW((void)svc.submit(std::vector<float>{}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)svc.submit(keys_for(16, 91), 0), std::invalid_argument);
  EXPECT_THROW((void)svc.submit(keys_for(16, 92), 17), std::invalid_argument);
}

TEST(TopkService, GreatestAndSortedModes) {
  ServiceConfig cfg = never_age_config();
  cfg.max_batch = 2;
  cfg.greatest = true;
  cfg.sorted_results = true;
  TopkService svc(cfg);
  const auto a = keys_for(2000, 93);
  const auto b = keys_for(2000, 94);
  // k=5/k=6 share a bucket, exercising the sorted greatest-K trim path.
  auto fa = svc.submit(std::vector<float>(a), 5);
  auto fb = svc.submit(std::vector<float>(b), 6);
  const QueryResult ra = fa.get();
  ASSERT_EQ(ra.status, QueryStatus::kOk) << ra.error;
  std::vector<float> want(a);
  std::sort(want.begin(), want.end(), std::greater<>());
  ASSERT_EQ(ra.topk.values.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ra.topk.values[i], want[i]) << "position " << i;
    EXPECT_EQ(a[ra.topk.indices[i]], ra.topk.values[i]);
  }
  const QueryResult rb = fb.get();
  ASSERT_EQ(rb.status, QueryStatus::kOk) << rb.error;
  EXPECT_EQ(rb.topk.values.size(), 6u);
}

TEST(TopkService, StatsLatencySummaryIsOrdered) {
  ServiceConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait = microseconds(200);
  TopkService svc(cfg);
  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 10; ++i) {
    futs.push_back(svc.submit(keys_for(1024, 100 + static_cast<std::uint64_t>(i)), 8));
  }
  for (auto& f : futs) ASSERT_EQ(f.get().status, QueryStatus::kOk);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.latency.count, 10u);
  EXPECT_LE(s.latency.p50_us, s.latency.p95_us);
  EXPECT_LE(s.latency.p95_us, s.latency.p99_us);
  EXPECT_LE(s.latency.p99_us, s.latency.max_us);
  EXPECT_GT(s.latency.p50_us, 0.0);
  EXPECT_GT(s.modeled_device_us, 0.0);
}

}  // namespace
}  // namespace topk::serve
