// Sharded multi-device top-K: coordinator correctness across shard counts,
// algorithms, tie/duplicate boundary cases, capacity validation, the serve
// integration (auto-engage + hints), and static auditability of the plans a
// sharded query executes.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "serve/service.hpp"
#include "shard/shard.hpp"
#include "simgpu/simgpu.hpp"
#include "verify/plan_audit.hpp"

namespace topk {
namespace {

std::vector<float> uniform_data(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1000.f, 1000.f);
  std::vector<float> data(n);
  for (auto& v : data) v = dist(rng);
  return data;
}

/// Exact check of a sharded result: indices valid and distinct, values match
/// data[index], and the value multiset equals the host reference's top-k
/// multiset (ties make the index set non-unique, the multiset is the
/// contract).
void expect_exact(std::span<const float> data, std::size_t k, bool greatest,
                  const SelectResult& r) {
  ASSERT_EQ(r.values.size(), k);
  ASSERT_EQ(r.indices.size(), k);
  std::vector<std::uint32_t> seen(r.indices.begin(), r.indices.end());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "duplicate index in result";
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_LT(r.indices[i], data.size());
    EXPECT_EQ(data[r.indices[i]], r.values[i]) << "index " << i;
  }
  std::vector<float> ref(data.begin(), data.end());
  if (greatest) {
    std::nth_element(ref.begin(), ref.begin() + static_cast<long>(k) - 1,
                     ref.end(), std::greater<float>());
  } else {
    std::nth_element(ref.begin(), ref.begin() + static_cast<long>(k) - 1,
                     ref.end());
  }
  std::vector<float> expect(ref.begin(), ref.begin() + static_cast<long>(k));
  std::vector<float> got(r.values.begin(), r.values.end());
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

// ---------------------------------------------------------------------------
// Fixed-seed sweep: shard counts x registry algorithms x least/greatest.
// ---------------------------------------------------------------------------

TEST(ShardSweep, AllAlgorithmsAllShardCounts) {
  const std::size_t n = std::size_t{1} << 16;
  const std::size_t k = 100;
  const std::vector<float> data = uniform_data(n, 1234);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{7}}) {
    const std::size_t n_shard = (n + shards - 1) / shards;
    for (const Algo algo : all_algorithms()) {
      if (algo == Algo::kAuto) continue;
      if (k > max_k(algo, n_shard)) continue;
      for (const bool greatest : {false, true}) {
        shard::ShardConfig cfg;
        cfg.devices = 4;
        cfg.shards = shards;
        cfg.algo = algo;
        cfg.options.greatest = greatest;
        const shard::ShardedResult res = shard::sharded_select(data, k, cfg);
        EXPECT_EQ(res.shards, shards);
        EXPECT_EQ(res.shard_algo, algo);
        SCOPED_TRACE(algo_name(algo) + (greatest ? " greatest" : " least") +
                     " shards=" + std::to_string(shards));
        expect_exact(data, k, greatest, res.topk);
      }
    }
  }
}

TEST(ShardSweep, SortedResultsAreBestFirst) {
  const std::vector<float> data = uniform_data(std::size_t{1} << 15, 77);
  for (const bool greatest : {false, true}) {
    shard::ShardConfig cfg;
    cfg.shards = 4;
    cfg.options.greatest = greatest;
    cfg.options.sorted = true;
    const shard::ShardedResult res = shard::sharded_select(data, 64, cfg);
    for (std::size_t i = 1; i < res.topk.values.size(); ++i) {
      if (greatest) {
        EXPECT_GE(res.topk.values[i - 1], res.topk.values[i]);
      } else {
        EXPECT_LE(res.topk.values[i - 1], res.topk.values[i]);
      }
    }
    expect_exact(data, 64, greatest, res.topk);
  }
}

// Duplicate runs deliberately straddling every shard boundary: the global
// top-k is a multiset cut through a tie class, and every shard contributes
// candidates from it.
TEST(ShardSweep, TiesStraddlingShardBoundaries) {
  const std::size_t n = 10007;  // prime: no boundary aligns with the pattern
  const std::size_t k = 64;
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(i % 3);  // huge tie classes 0, 1, 2
  }
  for (const std::size_t shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{7}}) {
    for (const bool greatest : {false, true}) {
      shard::ShardConfig cfg;
      cfg.shards = shards;
      cfg.options.greatest = greatest;
      const shard::ShardedResult res = shard::sharded_select(data, k, cfg);
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   (greatest ? " greatest" : " least"));
      expect_exact(data, k, greatest, res.topk);
    }
  }
}

TEST(ShardSweep, KEqualsShardCapacityEdge) {
  // k equal to a whole shard: max_shards clamps so every shard still holds
  // >= k keys.
  const std::size_t n = 4096, k = 1024;
  const std::vector<float> data = uniform_data(n, 9);
  shard::ShardConfig cfg;
  cfg.shards = 64;  // infeasible; must clamp to n / k = 4
  const shard::ShardedResult res = shard::sharded_select(data, k, cfg);
  EXPECT_LE(res.shards, shard::max_shards(n, k));
  expect_exact(data, k, false, res.topk);
}

TEST(ShardSweep, PlanCacheReusedAcrossQueries) {
  shard::ShardConfig cfg;
  cfg.shards = 4;
  shard::Coordinator coord(cfg);
  const std::vector<float> data = uniform_data(std::size_t{1} << 14, 5);
  const shard::ShardedResult a = coord.select(data, 32);
  const std::size_t misses_after_first = coord.plan_cache_misses();
  const shard::ShardedResult b = coord.select(data, 32);
  EXPECT_EQ(coord.plan_cache_misses(), misses_after_first)
      << "second identical query must be all plan-cache hits";
  EXPECT_GT(coord.plan_cache_hits(), std::size_t{0});
  EXPECT_EQ(a.topk.values, b.topk.values);
  EXPECT_EQ(a.topk.indices, b.topk.indices);
}

// ---------------------------------------------------------------------------
// Capacity validation: the single-device path rejects oversized rows with a
// message pointing at the sharded path, which accepts them.
// ---------------------------------------------------------------------------

TEST(ShardCapacity, SingleDeviceRejectsOversizedSharedAccepts) {
  simgpu::DeviceSpec spec;
  spec.max_select_elems = std::size_t{1} << 12;
  const std::size_t n = std::size_t{1} << 13;
  const std::vector<float> data = uniform_data(n, 21);

  simgpu::Device dev(spec);
  try {
    (void)select(dev, data, 16, Algo::kAuto);
    FAIL() << "select() must reject n beyond max_select_elems";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shard"), std::string::npos)
        << "rejection must name the sharded path: " << e.what();
  }

  shard::ShardConfig cfg;
  cfg.device_spec = spec;
  const shard::ShardedResult res = shard::sharded_select(data, 16, cfg);
  EXPECT_GE(res.shards, shard::min_shards(n, spec));
  expect_exact(data, 16, false, res.topk);
}

TEST(ShardCapacity, MergeCandidateLimitIsEnforced) {
  const std::vector<float> data = uniform_data(std::size_t{1} << 13, 3);
  try {
    (void)shard::sharded_select(data, 3000, {});
    FAIL() << "k beyond the merge candidate limit must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("candidate-list limit"),
              std::string::npos)
        << e.what();
  }
}

TEST(ShardCapacity, InfeasibleShardIntervalThrows) {
  // k so large that a device-sized shard cannot hold it.
  simgpu::DeviceSpec spec;
  spec.max_select_elems = 1024;
  const std::vector<float> data = uniform_data(8192, 4);
  shard::ShardConfig cfg;
  cfg.device_spec = spec;
  EXPECT_THROW((void)shard::sharded_select(data, 2048, cfg),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shard-count recommendation.
// ---------------------------------------------------------------------------

TEST(ShardRecommend, FloorAndCeiling) {
  simgpu::DeviceSpec spec;
  spec.max_select_elems = std::size_t{1} << 22;
  EXPECT_EQ(shard::min_shards(std::size_t{1} << 26, spec), std::size_t{16});
  EXPECT_EQ(shard::min_shards(std::size_t{1} << 20, spec), std::size_t{1});
  EXPECT_EQ(shard::max_shards(1000, 100), std::size_t{10});

  const std::size_t rec =
      shard::recommend_shards(std::size_t{1} << 26, 256, 4, spec);
  EXPECT_GE(rec, std::size_t{16}) << "must at least satisfy the capacity floor";
  EXPECT_LE(rec, shard::max_shards(std::size_t{1} << 26, 256));
}

TEST(ShardRecommend, SmallQueriesStayUnsharded) {
  const simgpu::DeviceSpec spec;  // default: no capacity pressure
  EXPECT_EQ(shard::recommend_shards(std::size_t{1} << 12, 16, 4, spec),
            std::size_t{1})
      << "a tiny row must not pay gather + merge overhead";
}

TEST(ShardRecommend, ShardedCostRaceSpeedsUpLargeQueries) {
  // Modeled 4-shard time at a large shape must beat the 1-shard candidate;
  // the recommender's cost race depends on this ordering.  The shape must
  // be big enough that the per-shard kernel savings clear the fixed PCIe /
  // merge floor (~45us under the default spec) — 2^26 is the acceptance
  // shape, 2^24 sits too close to the floor for a 4x split to pay off.
  const simgpu::DeviceSpec spec;
  const std::size_t n = std::size_t{1} << 26, k = 256;
  const double t1 = shard::estimated_sharded_cost_us(Algo::kAuto, 1, 4, n, k,
                                                     spec);
  const double t4 = shard::estimated_sharded_cost_us(Algo::kAuto, 4, 4, n, k,
                                                     spec);
  EXPECT_LT(t4, t1);
}

TEST(ShardRecommend, HintedRecommendationUsesPerShardShape) {
  // recommend_algorithm with a shard hint evaluates the per-shard length.
  WorkloadHints hints;
  hints.shards = 16;
  const Algo sharded = recommend_algorithm(std::size_t{1} << 26, 64, hints);
  const Algo direct = recommend_algorithm(std::size_t{1} << 22, 64, {});
  EXPECT_EQ(sharded, direct);
  WorkloadHints infeasible;
  infeasible.shards = 4;
  EXPECT_THROW((void)recommend_algorithm(1024, 512, infeasible),
               std::invalid_argument)
      << "k beyond the per-shard length must be rejected";
}

// ---------------------------------------------------------------------------
// Modeled scale-out: with a pool of 4 devices, 4 shards must be markedly
// faster than 1 shard in modeled time (deterministic, not wall clock).
// ---------------------------------------------------------------------------

TEST(ShardScaling, FourShardsBeatOneShardInModeledTime) {
  // The acceptance shape: N = 2^26 over a 4-device pool.  4 shards must
  // deliver near-linear scaling (>= 2.8x) over the 1-shard baseline in
  // modeled time, and the cross-shard merge (candidate H2D + merge
  // kernels) must stay under 10% of the sharded total.
  const std::size_t n = std::size_t{1} << 26, k = 256;
  const std::vector<float> data = uniform_data(n, 11);

  shard::ShardConfig cfg1;
  cfg1.devices = 4;
  cfg1.shards = 1;
  const double t1 = shard::sharded_select(data, k, cfg1).timing.total_us;

  shard::ShardConfig cfg4;
  cfg4.devices = 4;
  cfg4.shards = 4;
  const shard::ShardedResult r4 = shard::sharded_select(data, k, cfg4);
  EXPECT_EQ(r4.devices, std::size_t{4});
  EXPECT_GE(t1 / r4.timing.total_us, 2.8)
      << "t1=" << t1 << "us t4=" << r4.timing.total_us << "us";
  EXPECT_LT(r4.timing.merge_us, r4.timing.total_us * 0.10)
      << "merge overhead must stay under 10% (merge=" << r4.timing.merge_us
      << "us total=" << r4.timing.total_us << "us)";
  const double phase_sum = r4.timing.select_us + r4.timing.gather_us +
                           r4.timing.merge_us + r4.timing.output_us;
  EXPECT_DOUBLE_EQ(r4.timing.total_us, phase_sum)
      << "phase attribution must cover the total";
}

// ---------------------------------------------------------------------------
// Serving integration: hints and the capacity auto-engage.
// ---------------------------------------------------------------------------

TEST(ShardServe, HintRoutesThroughShardedPath) {
  serve::ServiceConfig cfg;
  cfg.shard_devices = 4;
  serve::TopkService svc(cfg);
  WorkloadHints hints;
  hints.shards = 3;
  std::vector<float> keys = uniform_data(std::size_t{1} << 14, 31);
  const std::vector<float> copy = keys;
  auto fut = svc.submit(std::move(keys), 32, std::nullopt, std::nullopt,
                        hints);
  const serve::QueryResult qr = fut.get();
  ASSERT_EQ(qr.status, serve::QueryStatus::kOk) << qr.error;
  EXPECT_EQ(qr.shards, std::size_t{3});
  EXPECT_GT(qr.device_us, 0.0);
  expect_exact(copy, 32, false, qr.topk);
  svc.shutdown();
  const serve::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.sharded_queries, std::uint64_t{1});
  EXPECT_GT(stats.sharded_device_us, 0.0);
}

TEST(ShardServe, OversizedRowAutoEngagesSharding) {
  serve::ServiceConfig cfg;
  cfg.device_spec.max_select_elems = std::size_t{1} << 14;
  cfg.shard_devices = 4;
  serve::TopkService svc(cfg);
  const std::size_t n = std::size_t{1} << 16;  // 4x the per-device ceiling
  std::vector<float> keys = uniform_data(n, 13);
  const std::vector<float> copy = keys;
  auto fut = svc.submit(std::move(keys), 50);  // no hints at all
  const serve::QueryResult qr = fut.get();
  ASSERT_EQ(qr.status, serve::QueryStatus::kOk) << qr.error;
  EXPECT_GE(qr.shards, std::size_t{4})
      << "row must be split at least to the capacity floor";
  expect_exact(copy, 50, false, qr.topk);
}

TEST(ShardServe, UnservableShardedRequestFailsGracefully) {
  serve::ServiceConfig cfg;
  cfg.device_spec.max_select_elems = std::size_t{1} << 10;
  serve::TopkService svc(cfg);
  // k cannot fit any device-sized shard: the future must resolve kFailed
  // (not hang, not crash) with the coordinator's diagnostic.
  std::vector<float> keys = uniform_data(std::size_t{1} << 12, 17);
  auto fut = svc.submit(std::move(keys), 2000);
  const serve::QueryResult qr = fut.get();
  EXPECT_EQ(qr.status, serve::QueryStatus::kFailed);
  EXPECT_FALSE(qr.error.empty());
}

// The acceptance shape: one N = 2^26 query on devices capped at 2^22 keys —
// never servable single-device — completes through topk::serve, exact
// against the host reference.
TEST(ShardServe, AcceptanceN26OnCappedDevices) {
  serve::ServiceConfig cfg;
  cfg.device_spec.max_select_elems = std::size_t{1} << 22;
  cfg.shard_devices = 4;
  serve::TopkService svc(cfg);
  const std::size_t n = std::size_t{1} << 26, k = 64;
  std::vector<float> keys = uniform_data(n, 42);
  const std::vector<float> copy = keys;
  auto fut = svc.submit(std::move(keys), k);
  const serve::QueryResult qr = fut.get();
  ASSERT_EQ(qr.status, serve::QueryStatus::kOk) << qr.error;
  EXPECT_GE(qr.shards, std::size_t{16});
  expect_exact(copy, k, false, qr.topk);
}

// ---------------------------------------------------------------------------
// Static auditability: every plan a sharded query executes walks the same
// auditor that gates single-device plans, and walks it clean.
// ---------------------------------------------------------------------------

TEST(ShardAudit, ShardedPlansAuditClean) {
  simgpu::DeviceSpec spec;
  spec.max_select_elems = std::size_t{1} << 22;
  for (const std::size_t shards : {std::size_t{0}, std::size_t{16}}) {
    const shard::ShardedPlan sp = shard::plan_sharded(
        spec, std::size_t{1} << 26, 256, shards, Algo::kAuto);
    EXPECT_GE(sp.shards, std::size_t{16});
    ASSERT_FALSE(sp.plans.empty());
    bool saw_merge = false;
    for (const auto& [label, plan] : sp.plans) {
      const verify::AuditReport report = verify::audit_plan(plan);
      EXPECT_TRUE(report.clean()) << label << ": " << verify::to_json(report);
      saw_merge = saw_merge || label.find("merge") != std::string::npos;
    }
    EXPECT_TRUE(saw_merge) << "multi-shard plan set must include the merge";
  }
}

}  // namespace
}  // namespace topk
