#include "simgpu/cost_model.hpp"

#include <gtest/gtest.h>

#include "simgpu/timeline.hpp"

namespace simgpu {
namespace {

KernelStats make_stats(int blocks, int threads, std::uint64_t bytes,
                       std::uint64_t ops = 0) {
  KernelStats s;
  s.name = "k";
  s.grid_blocks = blocks;
  s.block_threads = threads;
  s.bytes_read = bytes;
  s.lane_ops = ops;
  return s;
}

TEST(CostModel, MemoryBoundKernelScalesWithBytes) {
  CostModel model(DeviceSpec::a100());
  const auto c1 = model.kernel_cost(make_stats(2048, 256, 100u << 20));
  const auto c2 = model.kernel_cost(make_stats(2048, 256, 200u << 20));
  EXPECT_NEAR(c2.duration_us / c1.duration_us, 2.0, 0.01);
}

TEST(CostModel, SaturatedKernelReachesNearPeakBandwidth) {
  CostModel model(DeviceSpec::a100());
  const auto c = model.kernel_cost(make_stats(2048, 256, 1u << 30));
  EXPECT_GT(c.mem_sol, 0.85);
  EXPECT_LE(c.mem_sol, 1.0);
}

TEST(CostModel, SingleWarpGetsTinyFractionOfBandwidth) {
  CostModel model(DeviceSpec::a100());
  const auto full = model.kernel_cost(make_stats(2048, 256, 1u << 28));
  const auto one_warp = model.kernel_cost(make_stats(1, 32, 1u << 28));
  // One warp out of 108 SMs * 8 saturating warps => ~1/864 of the bandwidth.
  EXPECT_GT(one_warp.duration_us / full.duration_us, 100.0);
}

TEST(CostModel, MinimumKernelDurationApplies) {
  CostModel model(DeviceSpec::a100());
  const auto c = model.kernel_cost(make_stats(1, 32, 16));
  EXPECT_GE(c.duration_us, DeviceSpec::a100().min_kernel_duration_us);
}

TEST(CostModel, ComputeBoundKernelChargedByOps) {
  CostModel model(DeviceSpec::a100());
  const auto mem = model.kernel_cost(make_stats(256, 256, 1u << 20, 0));
  const auto cmp =
      model.kernel_cost(make_stats(256, 256, 1u << 20, std::uint64_t{1} << 34));
  EXPECT_GT(cmp.duration_us, 2 * mem.duration_us);
  EXPECT_GT(cmp.compute_sol, 0.5);
}

TEST(CostModel, FasterDeviceRunsMemoryBoundKernelFaster) {
  const auto stats = make_stats(2048, 256, 1u << 30);
  const double a100 = CostModel(DeviceSpec::a100()).kernel_cost(stats).duration_us;
  const double h100 = CostModel(DeviceSpec::h100()).kernel_cost(stats).duration_us;
  const double a10 = CostModel(DeviceSpec::a10()).kernel_cost(stats).duration_us;
  // Memory-bound performance ratios track the bandwidth ratios (paper §5.4).
  EXPECT_NEAR(a100 / h100, 3350.0 / 1555.0, 0.2);
  EXPECT_NEAR(a10 / a100, 1555.0 / 600.0, 0.2);
}

TEST(CostModel, KernelsOverlapWithHostUntilSync) {
  CostModel model(DeviceSpec::a100());
  EventLog log;
  log.push_back(KernelEvent{make_stats(2048, 256, 1u << 28)});
  log.push_back(KernelEvent{make_stats(2048, 256, 1u << 28)});
  const Timeline tl = model.simulate(log);
  // Two async launches: total ~= 2 kernel durations + small launch overhead,
  // and the host finished issuing long before the device drained.
  const double kernel_us =
      model.kernel_cost(make_stats(2048, 256, 1u << 28)).duration_us;
  EXPECT_NEAR(tl.total_us, 2 * kernel_us,
              3 * DeviceSpec::a100().kernel_launch_overhead_us + 1.0);
}

TEST(CostModel, MemcpySynchronizesAndChargesPcie) {
  CostModel model(DeviceSpec::a100());
  EventLog log;
  log.push_back(KernelEvent{make_stats(2048, 256, 1u << 28)});
  log.push_back(MemcpyEvent{MemcpyEvent::Dir::kDeviceToHost, 1u << 20, ""});
  const Timeline tl = model.simulate(log);
  const double kernel_us =
      model.kernel_cost(make_stats(2048, 256, 1u << 28)).duration_us;
  const double copy_us =
      DeviceSpec::a100().pcie_latency_us +
      (1u << 20) / DeviceSpec::a100().pcie_bytes_per_us();
  EXPECT_NEAR(tl.total_us,
              DeviceSpec::a100().kernel_launch_overhead_us + kernel_us + copy_us,
              0.5);
  EXPECT_GT(tl.transfer_us, DeviceSpec::a100().pcie_latency_us);
}

TEST(CostModel, HostManagedLoopCostsMoreThanFusedLaunches) {
  // The essence of the paper's Fig. 8: N kernels with round trips between
  // them vs. N kernels launched back to back.
  CostModel model(DeviceSpec::a100());
  EventLog fused, managed;
  for (int i = 0; i < 4; ++i) {
    const auto stats = make_stats(512, 256, 1u << 22);
    fused.push_back(KernelEvent{stats});
    managed.push_back(KernelEvent{stats});
    managed.push_back(MemcpyEvent{MemcpyEvent::Dir::kDeviceToHost, 1024, ""});
    managed.push_back(HostComputeEvent{"psum", 768});
    managed.push_back(SyncEvent{});
  }
  EXPECT_GT(model.total_us(managed), 1.5 * model.total_us(fused));
}

TEST(CostModel, TimelineRendererProducesThreeLanes) {
  CostModel model(DeviceSpec::a100());
  EventLog log;
  log.push_back(KernelEvent{make_stats(256, 256, 1u << 24)});
  log.push_back(MemcpyEvent{MemcpyEvent::Dir::kDeviceToHost, 4096, "hist"});
  log.push_back(HostComputeEvent{"psum", 768});
  const Timeline tl = model.simulate(log);
  const std::string art = render_timeline(tl, 80);
  EXPECT_NE(art.find("Host"), std::string::npos);
  EXPECT_NE(art.find("Device"), std::string::npos);
  EXPECT_NE(art.find("Transfer"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  const std::string desc = describe_timeline(tl);
  EXPECT_NE(desc.find("psum"), std::string::npos);
}

TEST(CostModel, EmptyLogIsZeroTime) {
  CostModel model(DeviceSpec::a100());
  EXPECT_EQ(model.total_us({}), 0.0);
}

}  // namespace
}  // namespace simgpu
