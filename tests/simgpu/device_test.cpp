#include "simgpu/device.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace simgpu {
namespace {

TEST(Device, AllocReturnsDistinctAlignedBuffers) {
  Device dev;
  auto a = dev.alloc<float>(100);
  auto b = dev.alloc<std::uint64_t>(50);
  ASSERT_NE(a.data(), nullptr);
  ASSERT_NE(b.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 256, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 256, 0u);
  // No overlap.
  const auto* a_end = reinterpret_cast<const std::byte*>(a.data() + 100);
  EXPECT_LE(static_cast<const void*>(a_end), static_cast<const void*>(b.data()));
}

TEST(Device, AllocZeroFills) {
  Device dev;
  auto b = dev.alloc_zero<std::uint32_t>(1000);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(b.data()[i], 0u);
}

TEST(Device, LargeAllocationSpansChunks) {
  Device dev;
  // Larger than the 64 MiB chunk size.
  auto big = dev.alloc<float>(20u << 20);
  ASSERT_NE(big.data(), nullptr);
  big.data()[0] = 1.0f;
  big.data()[(20u << 20) - 1] = 2.0f;
  EXPECT_EQ(big.data()[0], 1.0f);
}

TEST(Device, MarkReleaseReusesMemory) {
  Device dev;
  const auto mark = dev.mark();
  auto a = dev.alloc<float>(1024);
  float* first = a.data();
  const std::size_t live_after = dev.live_bytes();
  dev.release_to(mark);
  EXPECT_LT(dev.live_bytes(), live_after);
  auto b = dev.alloc<float>(1024);
  EXPECT_EQ(b.data(), first) << "released memory should be reused";
}

TEST(Device, PeakBytesTracksHighWater) {
  Device dev;
  const auto mark = dev.mark();
  dev.alloc<float>(1 << 20);
  const std::size_t peak = dev.peak_live_bytes();
  dev.release_to(mark);
  EXPECT_EQ(dev.peak_live_bytes(), peak) << "peak survives release";
  EXPECT_LT(dev.live_bytes(), peak);
}

TEST(Device, ScopedWorkspaceReleasesOnDestruction) {
  Device dev;
  const std::size_t before = dev.live_bytes();
  {
    ScopedWorkspace ws(dev);
    dev.alloc<double>(4096);
    EXPECT_GT(dev.live_bytes(), before);
  }
  EXPECT_EQ(dev.live_bytes(), before);
}

TEST(Device, TransfersAreRecordedAsEvents) {
  Device dev;
  std::vector<float> host(256);
  std::iota(host.begin(), host.end(), 0.0f);
  auto buf = dev.to_device(std::span<const float>(host), "input");
  auto back = dev.to_host(buf, "output");
  EXPECT_EQ(back, host);
  ASSERT_EQ(dev.events().size(), 2u);
  const auto* h2d = std::get_if<MemcpyEvent>(&dev.events()[0]);
  const auto* d2h = std::get_if<MemcpyEvent>(&dev.events()[1]);
  ASSERT_NE(h2d, nullptr);
  ASSERT_NE(d2h, nullptr);
  EXPECT_EQ(h2d->dir, MemcpyEvent::Dir::kHostToDevice);
  EXPECT_EQ(h2d->bytes, 256 * sizeof(float));
  EXPECT_EQ(d2h->dir, MemcpyEvent::Dir::kDeviceToHost);
}

TEST(Device, SyncAndHostComputeRecorded) {
  Device dev;
  dev.synchronize("wait");
  dev.host_compute("prefix sum", 512);
  ASSERT_EQ(dev.events().size(), 2u);
  EXPECT_NE(std::get_if<SyncEvent>(&dev.events()[0]), nullptr);
  const auto* hc = std::get_if<HostComputeEvent>(&dev.events()[1]);
  ASSERT_NE(hc, nullptr);
  EXPECT_EQ(hc->host_ops, 512u);
}

TEST(Device, TakeEventsDrainsLog) {
  Device dev;
  dev.synchronize();
  auto events = dev.take_events();
  EXPECT_EQ(events.size(), 1u);
  EXPECT_TRUE(dev.events().empty());
}

TEST(Device, DeviceSpecProfiles) {
  EXPECT_EQ(DeviceSpec::a100().sm_count, 108);
  EXPECT_NEAR(DeviceSpec::a100().mem_bandwidth_gbps, 1555.0, 1e-9);
  EXPECT_GT(DeviceSpec::h100().mem_bandwidth_gbps,
            DeviceSpec::a100().mem_bandwidth_gbps);
  EXPECT_LT(DeviceSpec::a10().mem_bandwidth_gbps,
            DeviceSpec::a100().mem_bandwidth_gbps);
}

}  // namespace
}  // namespace simgpu
