#include "simgpu/kernel.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "simgpu/device.hpp"

namespace simgpu {
namespace {

TEST(Warp, BallotMatchesPredicate) {
  const std::uint32_t mask = Warp::ballot([](int lane) { return lane % 3 == 0; });
  for (int lane = 0; lane < kWarpSize; ++lane) {
    EXPECT_EQ((mask >> lane) & 1u, lane % 3 == 0 ? 1u : 0u) << lane;
  }
}

TEST(Warp, RankBelowCountsPrecedingLanes) {
  const std::uint32_t mask = 0b1011u;  // lanes 0, 1, 3 qualified
  EXPECT_EQ(Warp::rank_below(mask, 0), 0);
  EXPECT_EQ(Warp::rank_below(mask, 1), 1);
  EXPECT_EQ(Warp::rank_below(mask, 2), 2);
  EXPECT_EQ(Warp::rank_below(mask, 3), 2);
  EXPECT_EQ(Warp::rank_below(mask, 31), 3);
}

TEST(Warp, EachVisitsAllLanesInOrder) {
  Warp w(0);
  std::vector<int> lanes;
  w.each([&](int lane) { lanes.push_back(lane); });
  ASSERT_EQ(lanes.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(lanes[static_cast<std::size_t>(i)], i);
}

TEST(Launch, GridCoversAllBlocks) {
  Device dev;
  auto out = dev.alloc_zero<std::uint32_t>(64);
  launch(dev, {"mark", 64, 32}, [=](BlockCtx& ctx) {
    ctx.store<std::uint32_t>(out, static_cast<std::size_t>(ctx.block_idx()),
                             static_cast<std::uint32_t>(ctx.block_idx() + 1));
  });
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out.data()[i], static_cast<std::uint32_t>(i + 1));
  }
}

TEST(Launch, CountsTrafficExactly) {
  Device dev;
  constexpr std::size_t kN = 1000;
  auto in = dev.alloc<float>(kN);
  auto out = dev.alloc<float>(kN);
  std::iota(in.data(), in.data() + kN, 0.0f);
  const KernelStats stats =
      launch(dev, {"copy", 4, 64}, [=](BlockCtx& ctx) {
        const std::size_t per = kN / 4;
        const auto b = static_cast<std::size_t>(ctx.block_idx());
        for (std::size_t i = b * per; i < (b + 1) * per; ++i) {
          ctx.store(out, i, ctx.load(in, i));
        }
      });
  EXPECT_EQ(stats.bytes_read, kN * sizeof(float));
  EXPECT_EQ(stats.bytes_written, kN * sizeof(float));
  EXPECT_EQ(stats.grid_blocks, 4);
  EXPECT_EQ(stats.warps_per_block(), 2);
}

TEST(Launch, AtomicAddAcrossBlocksIsExact) {
  Device dev;
  auto counter = dev.alloc_zero<std::uint64_t>(1);
  constexpr int kBlocks = 500;
  const KernelStats stats =
      launch(dev, {"atomics", kBlocks, 32}, [=](BlockCtx& ctx) {
        for (int i = 0; i < 100; ++i) {
          ctx.atomic_add(counter, 0, std::uint64_t{1});
        }
      });
  EXPECT_EQ(counter.data()[0], 500u * 100u);
  EXPECT_EQ(stats.atomic_ops, 500u * 100u);
}

TEST(Launch, AtomicMinMax) {
  Device dev;
  auto lo = dev.alloc<std::uint32_t>(1);
  auto hi = dev.alloc<std::uint32_t>(1);
  lo.data()[0] = 0xFFFFFFFFu;
  hi.data()[0] = 0;
  launch(dev, {"minmax", 64, 32}, [=](BlockCtx& ctx) {
    const auto v = static_cast<std::uint32_t>(ctx.block_idx() * 7 + 3);
    ctx.atomic_min(lo, 0, v);
    ctx.atomic_max(hi, 0, v);
  });
  EXPECT_EQ(lo.data()[0], 3u);
  EXPECT_EQ(hi.data()[0], 63u * 7 + 3);
}

TEST(Launch, LastBlockElectionSeesAllWrites) {
  // The grid-cooperative pattern AIR Top-K relies on: every block writes its
  // slot, the last block to finish sums them all.
  Device dev;
  constexpr int kBlocks = 256;
  auto slots = dev.alloc_zero<std::uint64_t>(kBlocks);
  auto finished = dev.alloc_zero<std::uint32_t>(1);
  auto total = dev.alloc_zero<std::uint64_t>(1);
  launch(dev, {"election", kBlocks, 32}, [=](BlockCtx& ctx) {
    ctx.store<std::uint64_t>(slots, static_cast<std::size_t>(ctx.block_idx()),
                             static_cast<std::uint64_t>(ctx.block_idx()));
    const std::uint32_t fin = ctx.atomic_add(finished, 0, 1u);
    if (fin == kBlocks - 1) {
      std::uint64_t sum = 0;
      for (int b = 0; b < kBlocks; ++b) {
        sum += ctx.load(slots, static_cast<std::size_t>(b));
      }
      ctx.store<std::uint64_t>(total, 0, sum);
    }
  });
  EXPECT_EQ(total.data()[0], 255ull * 256 / 2);
}

TEST(Launch, SharedMemoryIsPerBlockAndBounded) {
  Device dev;
  auto out = dev.alloc_zero<std::uint32_t>(32);
  launch(dev, {"shared", 32, 64}, [=](BlockCtx& ctx) {
    auto s = ctx.shared_zero<std::uint32_t>(128);
    for (std::size_t i = 0; i < 128; ++i) {
      EXPECT_EQ(s[i], 0u);  // must not see another block's data
      s[i] = static_cast<std::uint32_t>(ctx.block_idx());
    }
    ctx.store<std::uint32_t>(out, static_cast<std::size_t>(ctx.block_idx()),
                             s[0]);
  });
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(out.data()[i], static_cast<std::uint32_t>(i));
  }
}

TEST(Launch, SharedMemoryOverflowThrows) {
  Device dev;  // A100 spec: 164 KiB per block
  EXPECT_THROW(
      launch(dev, {"overflow", 1, 32},
             [&](BlockCtx& ctx) { ctx.shared<std::uint8_t>(200 * 1024); }),
      SharedMemoryOverflow);
}

TEST(Launch, InvalidConfigRejected) {
  Device dev;
  auto noop = [](BlockCtx&) {};
  EXPECT_THROW(launch(dev, {"bad", 0, 32}, noop), std::invalid_argument);
  EXPECT_THROW(launch(dev, {"bad", 1, 31}, noop), std::invalid_argument);
  EXPECT_THROW(launch(dev, {"bad", 1, 0}, noop), std::invalid_argument);
}

TEST(Launch, SyncAndOpsAreCounted) {
  Device dev;
  const KernelStats stats = launch(dev, {"counted", 3, 32}, [](BlockCtx& ctx) {
    ctx.ops(10);
    ctx.sync();
    ctx.ops(5);
    ctx.sync();
  });
  EXPECT_EQ(stats.lane_ops, 45u);
  EXPECT_EQ(stats.block_syncs, 6u);
}

TEST(Launch, KernelEventRecordedOnDevice) {
  Device dev;
  launch(dev, {"recorded", 2, 32}, [](BlockCtx&) {});
  ASSERT_EQ(dev.events().size(), 1u);
  const auto* k = std::get_if<KernelEvent>(&dev.events()[0]);
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->stats.name, "recorded");
  EXPECT_EQ(k->stats.grid_blocks, 2);
}

}  // namespace
}  // namespace simgpu
