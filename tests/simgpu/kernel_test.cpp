#include "simgpu/kernel.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "simgpu/device.hpp"

namespace simgpu {
namespace {

TEST(Warp, BallotMatchesPredicate) {
  const std::uint32_t mask = Warp::ballot([](int lane) { return lane % 3 == 0; });
  for (int lane = 0; lane < kWarpSize; ++lane) {
    EXPECT_EQ((mask >> lane) & 1u, lane % 3 == 0 ? 1u : 0u) << lane;
  }
}

TEST(Warp, RankBelowCountsPrecedingLanes) {
  const std::uint32_t mask = 0b1011u;  // lanes 0, 1, 3 qualified
  EXPECT_EQ(Warp::rank_below(mask, 0), 0);
  EXPECT_EQ(Warp::rank_below(mask, 1), 1);
  EXPECT_EQ(Warp::rank_below(mask, 2), 2);
  EXPECT_EQ(Warp::rank_below(mask, 3), 2);
  EXPECT_EQ(Warp::rank_below(mask, 31), 3);
}

TEST(Warp, EachVisitsAllLanesInOrder) {
  Warp w(0);
  std::vector<int> lanes;
  w.each([&](int lane) { lanes.push_back(lane); });
  ASSERT_EQ(lanes.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(lanes[static_cast<std::size_t>(i)], i);
}

TEST(Launch, GridCoversAllBlocks) {
  Device dev;
  auto out = dev.alloc_zero<std::uint32_t>(64);
  launch(dev, {"mark", 64, 32}, [=](BlockCtx& ctx) {
    ctx.store<std::uint32_t>(out, static_cast<std::size_t>(ctx.block_idx()),
                             static_cast<std::uint32_t>(ctx.block_idx() + 1));
  });
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out.data()[i], static_cast<std::uint32_t>(i + 1));
  }
}

TEST(Launch, CountsTrafficExactly) {
  Device dev;
  constexpr std::size_t kN = 1000;
  auto in = dev.alloc<float>(kN);
  auto out = dev.alloc<float>(kN);
  std::iota(in.data(), in.data() + kN, 0.0f);
  const KernelStats stats =
      launch(dev, {"copy", 4, 64}, [=](BlockCtx& ctx) {
        const std::size_t per = kN / 4;
        const auto b = static_cast<std::size_t>(ctx.block_idx());
        for (std::size_t i = b * per; i < (b + 1) * per; ++i) {
          ctx.store(out, i, ctx.load(in, i));
        }
      });
  EXPECT_EQ(stats.bytes_read, kN * sizeof(float));
  EXPECT_EQ(stats.bytes_written, kN * sizeof(float));
  EXPECT_EQ(stats.grid_blocks, 4);
  EXPECT_EQ(stats.warps_per_block(), 2);
}

TEST(Launch, AtomicAddAcrossBlocksIsExact) {
  Device dev;
  auto counter = dev.alloc_zero<std::uint64_t>(1);
  constexpr int kBlocks = 500;
  const KernelStats stats =
      launch(dev, {"atomics", kBlocks, 32}, [=](BlockCtx& ctx) {
        for (int i = 0; i < 100; ++i) {
          ctx.atomic_add(counter, 0, std::uint64_t{1});
        }
      });
  EXPECT_EQ(counter.data()[0], 500u * 100u);
  EXPECT_EQ(stats.atomic_ops, 500u * 100u);
}

TEST(Launch, AtomicMinMax) {
  Device dev;
  auto lo = dev.alloc<std::uint32_t>(1);
  auto hi = dev.alloc<std::uint32_t>(1);
  lo.data()[0] = 0xFFFFFFFFu;
  hi.data()[0] = 0;
  launch(dev, {"minmax", 64, 32}, [=](BlockCtx& ctx) {
    const auto v = static_cast<std::uint32_t>(ctx.block_idx() * 7 + 3);
    ctx.atomic_min(lo, 0, v);
    ctx.atomic_max(hi, 0, v);
  });
  EXPECT_EQ(lo.data()[0], 3u);
  EXPECT_EQ(hi.data()[0], 63u * 7 + 3);
}

TEST(Launch, LastBlockElectionSeesAllWrites) {
  // The grid-cooperative pattern AIR Top-K relies on: every block writes its
  // slot, the last block to finish sums them all.
  Device dev;
  constexpr int kBlocks = 256;
  auto slots = dev.alloc_zero<std::uint64_t>(kBlocks);
  auto finished = dev.alloc_zero<std::uint32_t>(1);
  auto total = dev.alloc_zero<std::uint64_t>(1);
  launch(dev, {"election", kBlocks, 32}, [=](BlockCtx& ctx) {
    ctx.store<std::uint64_t>(slots, static_cast<std::size_t>(ctx.block_idx()),
                             static_cast<std::uint64_t>(ctx.block_idx()));
    const std::uint32_t fin = ctx.atomic_add(finished, 0, 1u);
    if (fin == kBlocks - 1) {
      std::uint64_t sum = 0;
      for (int b = 0; b < kBlocks; ++b) {
        sum += ctx.load(slots, static_cast<std::size_t>(b));
      }
      ctx.store<std::uint64_t>(total, 0, sum);
    }
  });
  EXPECT_EQ(total.data()[0], 255ull * 256 / 2);
}

TEST(Launch, SharedMemoryIsPerBlockAndBounded) {
  Device dev;
  auto out = dev.alloc_zero<std::uint32_t>(32);
  launch(dev, {"shared", 32, 64}, [=](BlockCtx& ctx) {
    auto s = ctx.shared_zero<std::uint32_t>(128);
    for (std::size_t i = 0; i < 128; ++i) {
      EXPECT_EQ(s[i], 0u);  // must not see another block's data
      s[i] = static_cast<std::uint32_t>(ctx.block_idx());
    }
    ctx.store<std::uint32_t>(out, static_cast<std::size_t>(ctx.block_idx()),
                             s[0]);
  });
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(out.data()[i], static_cast<std::uint32_t>(i));
  }
}

TEST(Launch, SharedMemoryOverflowThrows) {
  Device dev;  // A100 spec: 164 KiB per block
  EXPECT_THROW(
      launch(dev, {"overflow", 1, 32},
             [&](BlockCtx& ctx) { ctx.shared<std::uint8_t>(200 * 1024); }),
      SharedMemoryOverflow);
}

TEST(Launch, InvalidConfigRejected) {
  Device dev;
  auto noop = [](BlockCtx&) {};
  EXPECT_THROW(launch(dev, {"bad", 0, 32}, noop), std::invalid_argument);
  EXPECT_THROW(launch(dev, {"bad", 1, 31}, noop), std::invalid_argument);
  EXPECT_THROW(launch(dev, {"bad", 1, 0}, noop), std::invalid_argument);
}

TEST(Launch, SyncAndOpsAreCounted) {
  Device dev;
  const KernelStats stats = launch(dev, {"counted", 3, 32}, [](BlockCtx& ctx) {
    ctx.ops(10);
    ctx.sync();
    ctx.ops(5);
    ctx.sync();
  });
  EXPECT_EQ(stats.lane_ops, 45u);
  EXPECT_EQ(stats.block_syncs, 6u);
}

TEST(Launch, KernelEventRecordedOnDevice) {
  Device dev;
  launch(dev, {"recorded", 2, 32}, [](BlockCtx&) {});
  ASSERT_EQ(dev.events().size(), 1u);
  const auto* k = std::get_if<KernelEvent>(&dev.events()[0]);
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->stats.name, "recorded");
  EXPECT_EQ(k->stats.grid_blocks, 2);
}

/// Restores the process-global tile toggle however a test exits.
class TileGuard {
 public:
  TileGuard() : was_(tile_path_enabled()) {}
  ~TileGuard() { set_tile_path_enabled(was_); }

 private:
  bool was_;
};

TEST(TileAccessors, LoadTileChargesAndReturnsData) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  constexpr std::size_t kN = 2500;  // two full tiles + a ragged tail
  auto in = dev.alloc<float>(kN);
  std::iota(in.data(), in.data() + kN, 0.0f);
  double sum = 0.0;
  const KernelStats stats = launch(dev, {"tload", 1, 32}, [&](BlockCtx& ctx) {
    std::size_t i = 0;
    while (i < kN) {
      const std::size_t c = std::min(kTileElems, kN - i);
      const std::span<const float> t = ctx.load_tile(in, i, c);
      ASSERT_EQ(t.size(), c);
      for (const float v : t) sum += v;
      i += c;
    }
  });
  EXPECT_EQ(stats.bytes_read, kN * sizeof(float));
  EXPECT_EQ(sum, kN * (kN - 1) / 2.0);
}

TEST(TileAccessors, StoreTileRoundtripAndCharge) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  constexpr std::size_t kN = 1300;
  auto out = dev.alloc_zero<std::uint32_t>(kN);
  const KernelStats stats = launch(dev, {"tstore", 1, 32}, [=](BlockCtx& ctx) {
    std::uint32_t buf[kTileElems];
    std::size_t i = 0;
    while (i < kN) {
      const std::size_t c = std::min(kTileElems, kN - i);
      for (std::size_t u = 0; u < c; ++u) {
        buf[u] = static_cast<std::uint32_t>(i + u);
      }
      ctx.store_tile(out, i, std::span<const std::uint32_t>(buf, c));
      i += c;
    }
  });
  EXPECT_EQ(stats.bytes_written, kN * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out.data()[i], static_cast<std::uint32_t>(i)) << i;
  }
}

TEST(TileAccessors, CountersIdenticalToScalarEquivalents) {
  TileGuard guard;
  Device dev;
  constexpr std::size_t kN = 3001;
  auto in = dev.alloc<float>(kN);
  auto out = dev.alloc<float>(kN);
  std::iota(in.data(), in.data() + kN, 0.0f);
  KernelStats got[2];
  for (const bool tile : {false, true}) {
    set_tile_path_enabled(tile);
    got[tile ? 1 : 0] =
        launch(dev, {"copy_modes", 4, 32}, [=](BlockCtx& ctx) {
          const std::size_t per = (kN + 3) / 4;
          const auto b = static_cast<std::size_t>(ctx.block_idx());
          const std::size_t begin = std::min(b * per, kN);
          const std::size_t end = std::min(begin + per, kN);
          float buf[kTileElems];
          ctx.for_each_elem(in, begin, end - begin,
                            [&](std::size_t j, float v) {
                              buf[j % kTileElems] = v + 1.0f;
                              if ((j + 1) % kTileElems == 0 ||
                                  j + 1 == end - begin) {
                                const std::size_t c = j % kTileElems + 1;
                                ctx.store_tile(
                                    out, begin + j + 1 - c,
                                    std::span<const float>(buf, c));
                              }
                            });
        });
  }
  EXPECT_EQ(got[0].bytes_read, got[1].bytes_read);
  EXPECT_EQ(got[0].bytes_written, got[1].bytes_written);
  EXPECT_EQ(got[0].bytes_read, kN * sizeof(float));
  EXPECT_EQ(got[0].bytes_written, kN * sizeof(float));
}

TEST(TileAccessors, OutOfBoundsTileSuppressedWithoutSanitizer) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  auto small = dev.alloc_zero<std::uint32_t>(10);
  std::size_t got_elems = 1;
  const KernelStats stats = launch(dev, {"oob", 1, 32}, [&](BlockCtx& ctx) {
    got_elems = ctx.load_tile(small, 5, 10).size();  // reaches past extent
    std::uint32_t buf[4] = {1, 2, 3, 4};
    ctx.store_tile(small, 8, std::span<const std::uint32_t>(buf, 4));
  });
  EXPECT_EQ(got_elems, 0u);  // suppressed wholesale
  // Charged as requested even though suppressed (matches scalar accounting).
  EXPECT_EQ(stats.bytes_read, 10 * sizeof(std::uint32_t));
  EXPECT_EQ(stats.bytes_written, 4 * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(small.data()[i], 0u) << i;
}

TEST(TileAccessors, ForEachElemVisitsIdenticallyInBothModes) {
  TileGuard guard;
  Device dev;
  constexpr std::size_t kN = 2100;
  auto in = dev.alloc<std::uint32_t>(kN);
  std::iota(in.data(), in.data() + kN, 0u);
  for (const bool tile : {false, true}) {
    set_tile_path_enabled(tile);
    std::vector<std::uint32_t> seen;
    launch(dev, {"visit", 1, 32}, [&](BlockCtx& ctx) {
      ctx.for_each_elem(in, 100, kN - 100, [&](std::size_t j, std::uint32_t v) {
        ASSERT_EQ(v, 100 + j);
        seen.push_back(v);
      });
    });
    ASSERT_EQ(seen.size(), kN - 100) << "tile=" << tile;
    EXPECT_EQ(seen.front(), 100u) << "tile=" << tile;
    EXPECT_EQ(seen.back(), kN - 1) << "tile=" << tile;
  }
}

TEST(TileAccessors, ScatterWriterChargesIdenticallyInBothModes) {
  TileGuard guard;
  Device dev;
  constexpr std::size_t kN = 1777;
  auto out = dev.alloc_zero<std::uint32_t>(kN);
  for (const bool tile : {false, true}) {
    set_tile_path_enabled(tile);
    const KernelStats stats =
        launch(dev, {"scatter", 1, 32}, [=](BlockCtx& ctx) {
          auto w = ctx.scatter_writer(out, kN);
          for (std::size_t i = 0; i < kN; ++i) {
            w.put((i * 7919) % kN, static_cast<std::uint32_t>(i));
          }
        });
    EXPECT_EQ(stats.bytes_written, kN * sizeof(std::uint32_t))
        << "tile=" << tile;
  }
  // 7919 is coprime with kN, so every slot was written by both passes.
  std::vector<bool> hit(kN, false);
  for (std::size_t i = 0; i < kN; ++i) {
    hit[(i * 7919) % kN] = true;
  }
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool b) { return b; }));
}

/// Restores the warpfast toggle however a test exits.
class WarpfastGuard {
 public:
  WarpfastGuard() : was_(warpfast_path_enabled()) {}
  ~WarpfastGuard() { set_warpfast_path_enabled(was_); }

 private:
  bool was_;
};

TEST(Warpfast, EnabledOnlyWithTileToggleAndNoSanitizer) {
  TileGuard tile_guard;
  WarpfastGuard wf_guard;
  for (const bool tile : {false, true}) {
    for (const bool wf : {false, true}) {
      for (const bool sanitize : {false, true}) {
        set_tile_path_enabled(tile);
        set_warpfast_path_enabled(wf);
        Device dev;
        if (sanitize) dev.enable_sanitizer();
        bool got = false;
        launch(dev, {"wfgate", 1, 32},
               [&](BlockCtx& ctx) { got = ctx.warpfast_enabled(); });
        EXPECT_EQ(got, tile && wf && !sanitize)
            << "tile=" << tile << " wf=" << wf << " sanitize=" << sanitize;
      }
    }
  }
}

TEST(Warpfast, ToggleSampledPerLaunchNotPerCall) {
  TileGuard tile_guard;
  WarpfastGuard wf_guard;
  set_tile_path_enabled(true);
  set_warpfast_path_enabled(true);
  Device dev;
  bool first = false;
  launch(dev, {"wf1", 1, 32},
         [&](BlockCtx& ctx) { first = ctx.warpfast_enabled(); });
  set_warpfast_path_enabled(false);
  bool second = true;
  launch(dev, {"wf2", 1, 32},
         [&](BlockCtx& ctx) { second = ctx.warpfast_enabled(); });
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(Warpfast, CountBelowIsExactAndChargeFree) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  std::vector<float> fv = {3.0f, -1.0f, 2.0f, 2.0f, -7.5f, 0.0f, 9.0f};
  std::vector<int> iv = {5, -2, 7, 7, 0, -9};
  const KernelStats stats = launch(dev, {"cb", 1, 32}, [&](BlockCtx&) {
    // Strict compare: the two 2.0f / 7 duplicates of the threshold are out.
    EXPECT_EQ(BlockCtx::count_below<float>(fv, 2.0f), 3u);
    EXPECT_EQ(BlockCtx::count_below<int>(iv, 7), 4u);
    EXPECT_EQ(BlockCtx::count_below<float>({}, 2.0f), 0u);
  });
  // count_below is a pure compute helper: nothing may hit the counters.
  EXPECT_EQ(stats.bytes_read, 0u);
  EXPECT_EQ(stats.lane_ops, 0u);
}

TEST(TileAccessors, UncheckedSharedDataGatedOnTilePath) {
  TileGuard guard;
  Device dev;
  for (const bool tile : {false, true}) {
    set_tile_path_enabled(tile);
    launch(dev, {"shraw", 1, 32}, [&](BlockCtx& ctx) {
      auto s = ctx.shared_zero<std::uint32_t>(64);
      std::uint32_t* raw = s.unchecked_data();
      if (tile) {
        ASSERT_NE(raw, nullptr);
        raw[7] = 42;
        EXPECT_EQ(static_cast<std::uint32_t>(s[7]), 42u);
      } else {
        EXPECT_EQ(raw, nullptr);
      }
    });
  }
}

}  // namespace
}  // namespace simgpu
