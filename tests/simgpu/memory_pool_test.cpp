// MemoryPool / Workspace coverage: size-class reuse and the hit/miss/
// high-water stats, the TOPK_SIM_POOL toggle's no-retention mode, poisoning
// of released slabs, and — the part that keeps pooling honest — simcheck
// attribution *inside* pooled segments: an out-of-bounds access is blamed on
// the named segment, and a read of recycled bytes after a rebind is reported
// as uninitialized rather than silently served stale data.

#include "simgpu/memory_pool.hpp"

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "simgpu/simgpu.hpp"
#include "simgpu/workspace.hpp"

namespace simgpu {
namespace {

/// Restores the process-global pool toggle however a test exits.
class PoolGuard {
 public:
  PoolGuard() : was_(pool_enabled()) {}
  ~PoolGuard() { set_pool_enabled(was_); }

 private:
  bool was_;
};

TEST(MemoryPool, SizeClassReuseAndStats) {
  PoolGuard guard;
  set_pool_enabled(true);
  MemoryPool pool;

  // First acquire: host allocator, rounded up to the smallest size class.
  MemoryPool::Slab a = pool.acquire(1000);
  EXPECT_GE(a.bytes, MemoryPool::kMinSlabBytes);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().bytes_live, a.bytes);

  // Release retains; a fitting re-acquire is a hit on the same storage.
  std::byte* const base = a.base;
  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().bytes_live, 0u);
  EXPECT_GT(pool.stats().bytes_held, 0u);
  MemoryPool::Slab b = pool.acquire(2000);
  EXPECT_EQ(b.base, base);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);

  // A request no retained slab fits goes back to the allocator, and the
  // high-water mark tracks live + held bytes.
  MemoryPool::Slab big = pool.acquire(10 * MemoryPool::kMinSlabBytes);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_GE(pool.stats().high_water, b.bytes + big.bytes);
  pool.release(std::move(b));
  pool.release(std::move(big));

  EXPECT_DOUBLE_EQ(pool.stats().hit_rate(), 1.0 / 3.0);
  pool.trim();
  EXPECT_EQ(pool.stats().bytes_held, 0u);
}

TEST(MemoryPool, DisabledPoolNeverRetains) {
  PoolGuard guard;
  set_pool_enabled(false);
  MemoryPool pool;
  MemoryPool::Slab s = pool.acquire(100);
  pool.release(std::move(s));
  EXPECT_EQ(pool.stats().bytes_held, 0u);
  MemoryPool::Slab t = pool.acquire(100);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 2u);
  pool.release(std::move(t));
}

TEST(MemoryPool, ReleasePoisonsWhenAsked) {
  PoolGuard guard;
  set_pool_enabled(true);
  MemoryPool pool;
  MemoryPool::Slab s = pool.acquire(64);
  s.base[0] = std::byte{0x42};
  const std::size_t bytes = s.bytes;
  pool.release(std::move(s), /*poison=*/true);
  MemoryPool::Slab t = pool.acquire(64);  // the same retained slab
  for (std::size_t i = 0; i < bytes; ++i) {
    ASSERT_EQ(t.base[i], std::byte{MemoryPool::kPoisonByte}) << "byte " << i;
  }
  pool.release(std::move(t));
}

TEST(Workspace, RebindCountsHitsAndGrowthMisses) {
  PoolGuard guard;
  set_pool_enabled(true);
  Device dev;
  Workspace ws(dev);

  WorkspaceLayout small;
  small.add<float>("ws small", 256);
  WorkspaceLayout large;
  large.add<float>("ws large", 1 << 20);

  ws.bind(small);  // miss: nothing held yet
  ws.bind(small);  // hit: slab already big enough
  ws.bind(large);  // miss: must grow
  ws.bind(small);  // hit: the big slab covers the small layout
  const MemoryPool::Stats s = dev.memory_pool().stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  ws.release();
  EXPECT_EQ(dev.memory_pool().stats().bytes_live, 0u);
}

TEST(Workspace, SimcheckAttributesOobToThePooledSegment) {
  Device dev;
  dev.enable_sanitizer();
  Workspace ws(dev);
  WorkspaceLayout layout;
  const std::size_t seg = layout.add<float>("pooled scratch seg", 8);
  ws.bind(layout);
  DeviceBuffer<float> buf = ws.get<float>(seg);

  launch(dev, {"oob writer", 1, 32}, [&](BlockCtx& ctx) {
    ctx.store(buf, 9, 1.0f);  // one past-the-end-and-change of the segment
  });
  const auto rep = dev.sanitizer()->snapshot();
  EXPECT_FALSE(rep.clean());
  const std::string msg = rep.to_string();
  EXPECT_NE(msg.find("pooled scratch seg"), std::string::npos) << msg;
}

TEST(Workspace, RebindResetsShadowSoStaleReadsAreReported) {
  Device dev;
  dev.enable_sanitizer();
  Workspace ws(dev);
  WorkspaceLayout layout;
  const std::size_t seg = layout.add<float>("recycled seg", 16);

  ws.bind(layout);
  DeviceBuffer<float> buf = ws.get<float>(seg);
  launch(dev, {"writer", 1, 32}, [&](BlockCtx& ctx) {
    for (std::size_t i = 0; i < buf.size(); ++i) ctx.store(buf, i, 1.0f);
  });
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());

  // Same layout, same slab — a pool hit.  The rebind re-registers the
  // segment, so the bytes the writer left behind are stale, and reading one
  // before writing it must be flagged as uninitialized.
  ws.bind(layout);
  buf = ws.get<float>(seg);
  float sink = 0.0f;
  launch(dev, {"stale reader", 1, 32},
         [&](BlockCtx& ctx) { sink = ctx.load(buf, 0); });
  const auto rep = dev.sanitizer()->snapshot();
  EXPECT_FALSE(rep.clean()) << "stale read went undetected";
  const std::string msg = rep.to_string();
  EXPECT_NE(msg.find("recycled seg"), std::string::npos) << msg;
  (void)sink;
}

}  // namespace
}  // namespace simgpu
