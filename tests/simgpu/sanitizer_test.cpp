#include "simgpu/sanitizer.hpp"

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "simgpu/buffer.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernel.hpp"

// The cross-block race tests seed a genuine data race (concurrent plain
// stores from pool threads) for simcheck to catch; ThreadSanitizer rightly
// flags the same race, so those two tests are skipped under TSan.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMCHECK_UNDER_TSAN 1
#endif
#endif
#if !defined(SIMCHECK_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define SIMCHECK_UNDER_TSAN 1
#endif

namespace simgpu {
namespace {

std::size_t count_kind(const SanitizerReport& rep, IssueKind kind) {
  std::size_t n = 0;
  for (const auto& issue : rep.issues) {
    if (issue.kind == kind) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// DeviceBuffer::subspan bounds (regression: offset+count > size was accepted
// whenever offset alone was in range).

TEST(DeviceBufferSubspan, RejectsRangePastTheEnd) {
  std::vector<float> storage(8);
  DeviceBuffer<float> buf(storage.data(), storage.size());
  EXPECT_NO_THROW(buf.subspan(0, 8));
  EXPECT_NO_THROW(buf.subspan(8, 0));
  EXPECT_NO_THROW(buf.subspan(6, 2));
  EXPECT_THROW(buf.subspan(6, 3), std::out_of_range);
  EXPECT_THROW(buf.subspan(9, 0), std::out_of_range);
  // Overflow-proof form: offset + count wrapping around must not pass.
  EXPECT_THROW(buf.subspan(1, static_cast<std::size_t>(-1)),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// Host-side fill / memset_device seed both the bytes and the shadow.

TEST(DeviceFill, FillsValuesAndShadow) {
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<float>(32, "fill target");
  dev.fill(buf, 2.5f);
  const auto host = dev.to_host(buf);
  for (float v : host) EXPECT_EQ(v, 2.5f);
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

TEST(DeviceFill, MemsetZeroesValuesAndShadow) {
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<std::uint32_t>(16, "memset target");
  dev.memset_device(buf);
  const auto host = dev.to_host(buf);
  for (std::uint32_t v : host) EXPECT_EQ(v, 0u);
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

// ---------------------------------------------------------------------------
// Defect class 1: out-of-bounds device accesses.

TEST(Simcheck, CatchesOutOfBoundsStore) {
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc_zero<float>(16, "small buffer");
  launch(dev, {"oob store", 1, 32}, [&](BlockCtx& ctx) {
    ctx.store(buf, 20, 1.0f);  // bug: element 20 of a 16-element buffer
  });
  const auto rep = dev.sanitizer()->snapshot();
  ASSERT_EQ(count_kind(rep, IssueKind::kOutOfBounds), 1u);
  const auto& issue = rep.issues[0];
  EXPECT_EQ(issue.kernel, "oob store");
  EXPECT_EQ(issue.buffer, "small buffer");
  EXPECT_EQ(issue.index, 20u);
  EXPECT_EQ(issue.block, 0);
}

TEST(Simcheck, SuppressesOutOfBoundsLoad) {
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc_zero<float>(8, "short buffer");
  auto out = dev.alloc_zero<float>(1, "out");
  launch(dev, {"oob load", 1, 32}, [&](BlockCtx& ctx) {
    ctx.store(out, 0, ctx.load(buf, 100));  // suppressed load yields 0
  });
  EXPECT_EQ(dev.to_host(out)[0], 0.0f);
  EXPECT_EQ(count_kind(dev.sanitizer()->snapshot(), IssueKind::kOutOfBounds),
            1u);
}

TEST(Simcheck, CatchesOutOfBoundsSharedAccess) {
  Device dev;
  dev.enable_sanitizer();
  launch(dev, {"oob shared", 1, 32}, [&](BlockCtx& ctx) {
    auto sh = ctx.shared_zero<float>(4, "tiny tile");
    sh[7] = 1.0f;  // bug: past the 4-element shared allocation
  });
  const auto rep = dev.sanitizer()->snapshot();
  ASSERT_EQ(count_kind(rep, IssueKind::kOutOfBounds), 1u);
  EXPECT_NE(rep.issues[0].detail.find("shared"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Defect class 2: conflicting non-atomic device accesses across blocks.

TEST(Simcheck, CatchesCrossBlockWriteWriteRace) {
#ifdef SIMCHECK_UNDER_TSAN
  GTEST_SKIP() << "deliberately seeds a real data race; TSan flags it too";
#endif
  Device dev;
  dev.enable_sanitizer();
  auto out = dev.alloc_zero<std::uint32_t>(1, "contended cell");
  launch(dev, {"ww race", 8, 32}, [&](BlockCtx& ctx) {
    // Bug: every block plain-stores the same element.
    ctx.store(out, 0, static_cast<std::uint32_t>(ctx.block_idx()));
  });
  EXPECT_GE(count_kind(dev.sanitizer()->snapshot(), IssueKind::kDeviceRace),
            1u);
}

TEST(Simcheck, CatchesCrossBlockReadWriteRace) {
#ifdef SIMCHECK_UNDER_TSAN
  GTEST_SKIP() << "deliberately seeds a real data race; TSan flags it too";
#endif
  Device dev;
  dev.enable_sanitizer();
  auto cell = dev.alloc<float>(1, "flag");
  dev.fill(cell, 0.0f);
  auto sink = dev.alloc_zero<float>(8, "sink");
  launch(dev, {"rw race", 8, 32}, [&](BlockCtx& ctx) {
    const auto b = static_cast<std::size_t>(ctx.block_idx());
    if (b == 0) {
      ctx.store(cell, 0, 1.0f);  // bug: unordered with the other blocks' reads
    } else {
      ctx.store(sink, b, ctx.load(cell, 0));
    }
  });
  EXPECT_GE(count_kind(dev.sanitizer()->snapshot(), IssueKind::kDeviceRace),
            1u);
}

TEST(Simcheck, AtomicContentionIsNotARace) {
  Device dev;
  dev.enable_sanitizer();
  auto counter = dev.alloc_zero<std::uint64_t>(1, "counter");
  launch(dev, {"atomic counter", 16, 32}, [&](BlockCtx& ctx) {
    for (int i = 0; i < 10; ++i) ctx.atomic_add(counter, 0, std::uint64_t{1});
  });
  EXPECT_EQ(dev.to_host(counter)[0], 160u);
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

TEST(Simcheck, ElectedLastBlockPatternIsNotARace) {
  // The AIR/GridSelect pattern: every block writes its own partial, an atomic
  // arrival counter elects the last block, which then reads all partials and
  // writes the result.  The atomic chain orders everything.
  Device dev;
  dev.enable_sanitizer();
  constexpr int kBlocks = 8;
  auto partials = dev.alloc_zero<std::uint32_t>(kBlocks, "partials");
  auto arrivals = dev.alloc_zero<std::uint32_t>(1, "arrivals");
  auto result = dev.alloc_zero<std::uint32_t>(1, "result");
  launch(dev, {"elected reduce", kBlocks, 32}, [&](BlockCtx& ctx) {
    const auto b = static_cast<std::size_t>(ctx.block_idx());
    ctx.store(partials, b, static_cast<std::uint32_t>(b + 1));
    const std::uint32_t old = ctx.atomic_add(arrivals, 0, std::uint32_t{1});
    if (old == kBlocks - 1) {
      std::uint32_t sum = 0;
      for (std::size_t i = 0; i < kBlocks; ++i) sum += ctx.load(partials, i);
      ctx.store(result, 0, sum);
    }
  });
  EXPECT_EQ(dev.to_host(result)[0], 36u);
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean())
      << dev.sanitizer()->snapshot().to_string();
}

// ---------------------------------------------------------------------------
// Defect class 3: shared-memory races between warps of one sync phase.
// The sequential warp loop hides these completely without the sanitizer.

TEST(Simcheck, CatchesCrossWarpSharedWriteWriteRace) {
  Device dev;
  dev.enable_sanitizer();
  launch(dev, {"shared ww", 1, 64}, [&](BlockCtx& ctx) {
    auto sh = ctx.shared_zero<std::uint32_t>(1, "shared cell");
    ctx.for_each_warp([&](Warp& w) {
      w.each([&](int lane) {
        if (lane == 0) sh[0] = 1u;  // bug: both warps write, no ordering
      });
    });
  });
  EXPECT_GE(count_kind(dev.sanitizer()->snapshot(), IssueKind::kSharedRace),
            1u);
}

TEST(Simcheck, CatchesMissingSyncBetweenSharedPhases) {
  Device dev;
  dev.enable_sanitizer();
  auto out = dev.alloc_zero<std::uint32_t>(64, "out");
  launch(dev, {"missing sync", 1, 64}, [&](BlockCtx& ctx) {
    auto sh = ctx.shared_zero<std::uint32_t>(64, "tile");
    ctx.for_each_warp([&](Warp& w) {
      w.each([&](int lane) {
        const auto t = static_cast<std::size_t>(w.index() * 32 + lane);
        sh[t] = static_cast<std::uint32_t>(t);
      });
    });
    // Bug: no ctx.sync() here.
    ctx.for_each_warp([&](Warp& w) {
      w.each([&](int lane) {
        const auto t = static_cast<std::size_t>(w.index() * 32 + lane);
        // Each thread reads a cell the OTHER warp wrote.
        const std::size_t peer = 63 - t;
        ctx.store(out, t, sh[peer]);
      });
    });
  });
  EXPECT_GE(count_kind(dev.sanitizer()->snapshot(), IssueKind::kSharedRace),
            1u);
}

TEST(Simcheck, SyncSeparatedSharedPhasesAreClean) {
  Device dev;
  dev.enable_sanitizer();
  auto out = dev.alloc_zero<std::uint32_t>(64, "out");
  launch(dev, {"synced phases", 1, 64}, [&](BlockCtx& ctx) {
    auto sh = ctx.shared_zero<std::uint32_t>(64, "tile");
    ctx.for_each_warp([&](Warp& w) {
      w.each([&](int lane) {
        const auto t = static_cast<std::size_t>(w.index() * 32 + lane);
        sh[t] = static_cast<std::uint32_t>(t);
      });
    });
    ctx.sync();
    ctx.for_each_warp([&](Warp& w) {
      w.each([&](int lane) {
        const auto t = static_cast<std::size_t>(w.index() * 32 + lane);
        ctx.store(out, t, sh[63 - t]);
      });
    });
  });
  const auto host = dev.to_host(out);
  for (std::size_t t = 0; t < 64; ++t) {
    EXPECT_EQ(host[t], static_cast<std::uint32_t>(63 - t));
  }
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean())
      << dev.sanitizer()->snapshot().to_string();
}

// ---------------------------------------------------------------------------
// Defect class 4: uninitialized reads.

TEST(Simcheck, CatchesUninitializedSharedRead) {
  Device dev;
  dev.enable_sanitizer();
  auto out = dev.alloc_zero<float>(1, "out");
  launch(dev, {"uninit shared", 1, 32}, [&](BlockCtx& ctx) {
    auto sh = ctx.shared<float>(8, "scratch");  // bug: shared, not shared_zero
    ctx.store(out, 0, sh[3]);
  });
  EXPECT_EQ(
      count_kind(dev.sanitizer()->snapshot(), IssueKind::kUninitSharedRead),
      1u);
}

TEST(Simcheck, CatchesUninitializedDeviceRead) {
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<float>(8, "never written");  // bug: alloc, no init
  auto out = dev.alloc_zero<float>(1, "out");
  launch(dev, {"uninit device", 1, 32}, [&](BlockCtx& ctx) {
    ctx.store(out, 0, ctx.load(buf, 5));
  });
  const auto rep = dev.sanitizer()->snapshot();
  ASSERT_EQ(count_kind(rep, IssueKind::kUninitDeviceRead), 1u);
  EXPECT_EQ(rep.issues[0].buffer, "never written");
  EXPECT_EQ(rep.issues[0].index, 5u);
}

TEST(Simcheck, CatchesUninitializedDeviceToHostCopy) {
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<float>(8, "download me");
  (void)dev.to_host(buf);  // bug: downloading a buffer no kernel produced
  const auto rep = dev.sanitizer()->snapshot();
  ASSERT_EQ(count_kind(rep, IssueKind::kUninitDeviceRead), 1u);
  EXPECT_EQ(rep.issues[0].kernel, "<host>");
}

TEST(Simcheck, InstrumentedStoresSeedValidity) {
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<float>(32, "kernel-produced");
  launch(dev, {"produce", 1, 32}, [&](BlockCtx& ctx) {
    for (std::size_t i = 0; i < 32; ++i) {
      ctx.store(buf, i, static_cast<float>(i));
    }
  });
  const auto host = dev.to_host(buf);
  EXPECT_EQ(host[31], 31.0f);
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

// ---------------------------------------------------------------------------
// Defect class 5: sync-count divergence.

TEST(Simcheck, CatchesSyncInsideWarpRegion) {
  Device dev;
  dev.enable_sanitizer();
  launch(dev, {"divergent sync", 1, 64}, [&](BlockCtx& ctx) {
    ctx.for_each_warp([&](Warp& w) {
      if (w.index() == 0) ctx.sync();  // bug: barrier not reached uniformly
    });
  });
  EXPECT_EQ(
      count_kind(dev.sanitizer()->snapshot(), IssueKind::kSyncDivergence),
      1u);
}

// ---------------------------------------------------------------------------
// Report plumbing: config gates, flood control, clear().

TEST(Simcheck, ConfigGatesDisableIndividualChecks) {
  Device dev;
  SanitizerConfig cfg;
  cfg.check_uninit = false;
  dev.enable_sanitizer(cfg);
  auto buf = dev.alloc<float>(8, "never written");
  auto out = dev.alloc_zero<float>(1, "out");
  launch(dev, {"uninit off", 1, 32}, [&](BlockCtx& ctx) {
    ctx.store(out, 0, ctx.load(buf, 0));
  });
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

TEST(Simcheck, FloodControlCapsStoredIssues) {
  Device dev;
  SanitizerConfig cfg;
  cfg.max_issues = 4;
  dev.enable_sanitizer(cfg);
  auto buf = dev.alloc_zero<float>(4, "tiny");
  launch(dev, {"issue flood", 1, 32}, [&](BlockCtx& ctx) {
    for (std::size_t i = 0; i < 100; ++i) ctx.store(buf, 1000 + i, 0.0f);
  });
  const auto rep = dev.sanitizer()->snapshot();
  EXPECT_EQ(rep.issues.size(), 4u);
  EXPECT_EQ(rep.dropped, 96u);
  EXPECT_EQ(dev.sanitizer()->issue_count(), 100u);
  dev.sanitizer()->clear();
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

// ---------------------------------------------------------------------------
// Zero-cost contract: with and without the sanitizer the counted traffic of
// one launch is bit-identical (the checks observe, never charge).

TEST(Simcheck, CountedTrafficIdenticalWithSanitizerOn) {
  const auto run = [](Device& dev) {
    auto in = dev.alloc<float>(256, "in");
    std::vector<float> host(256);
    std::iota(host.begin(), host.end(), 0.0f);
    dev.upload(in, std::span<const float>(host));
    auto out = dev.alloc_zero<float>(256, "out");
    auto counter = dev.alloc_zero<std::uint64_t>(1, "counter");
    return launch(dev, {"mixed", 4, 64}, [&](BlockCtx& ctx) {
      const auto b = static_cast<std::size_t>(ctx.block_idx());
      auto sh = ctx.shared_zero<float>(64, "tile");
      ctx.for_each_warp([&](Warp& w) {
        w.each([&](int lane) {
          const auto t = static_cast<std::size_t>(w.index() * 32 + lane);
          sh[t] = ctx.load(in, b * 64 + t);
        });
      });
      ctx.sync();
      ctx.for_each_warp([&](Warp& w) {
        w.each([&](int lane) {
          const auto t = static_cast<std::size_t>(w.index() * 32 + lane);
          ctx.store(out, b * 64 + t, sh[t] + 1.0f);
        });
      });
      ctx.ops(64);
      ctx.atomic_add(counter, 0, std::uint64_t{1});
    });
  };

  Device plain;
  const KernelStats a = run(plain);
  Device checked;
  checked.enable_sanitizer();
  const KernelStats b = run(checked);
  EXPECT_TRUE(checked.sanitizer()->snapshot().clean())
      << checked.sanitizer()->snapshot().to_string();

  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.lane_ops, b.lane_ops);
  EXPECT_EQ(a.atomic_ops, b.atomic_ops);
  EXPECT_EQ(a.scattered_atomic_ops, b.scattered_atomic_ops);
  EXPECT_EQ(a.block_syncs, b.block_syncs);
  EXPECT_EQ(a.max_block_bytes, b.max_block_bytes);
  EXPECT_EQ(a.max_block_lane_ops, b.max_block_lane_ops);
}

// Storage reuse after a workspace rollback must not mis-attribute accesses to
// the released allocation.

TEST(Simcheck, WorkspaceRollbackDropsShadowRegions) {
  Device dev;
  dev.enable_sanitizer();
  {
    ScopedWorkspace ws(dev);
    auto tmp = dev.alloc_zero<float>(64, "scratch");
    launch(dev, {"touch scratch", 1, 32},
           [&](BlockCtx& ctx) { ctx.store(tmp, 0, 1.0f); });
  }
  // Same storage, new allocation: reads must be tracked against the new
  // region (fresh valid bits), not the released one.
  auto fresh = dev.alloc<float>(64, "fresh");
  auto out = dev.alloc_zero<float>(1, "out");
  launch(dev, {"read fresh", 1, 32},
         [&](BlockCtx& ctx) { ctx.store(out, 0, ctx.load(fresh, 0)); });
  const auto rep = dev.sanitizer()->snapshot();
  ASSERT_EQ(count_kind(rep, IssueKind::kUninitDeviceRead), 1u);
  EXPECT_EQ(rep.issues[0].buffer, "fresh");
}

// ---------------------------------------------------------------------------
// Tile fast path: with a sanitizer attached the bulk accessors fall back to
// per-element shadowing, so simcheck keeps element-exact precision.

/// Restores the process-global tile toggle however a test exits.
class TileGuard {
 public:
  TileGuard() : was_(tile_path_enabled()) {}
  ~TileGuard() { set_tile_path_enabled(was_); }

 private:
  bool was_;
};

TEST(SimcheckTile, CatchesOutOfBoundsTileLoad) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc_zero<float>(8, "short buffer");
  std::size_t got = 1;
  launch(dev, {"oob tile load", 1, 32}, [&](BlockCtx& ctx) {
    got = ctx.load_tile(buf, 4, 8).size();  // bug: reaches past element 8
  });
  EXPECT_EQ(got, 0u);  // suppressed wholesale, like scalar loads
  EXPECT_EQ(count_kind(dev.sanitizer()->snapshot(), IssueKind::kOutOfBounds),
            1u);
}

TEST(SimcheckTile, CatchesOutOfBoundsTileStore) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc_zero<float>(8, "short buffer");
  launch(dev, {"oob tile store", 1, 32}, [&](BlockCtx& ctx) {
    const float src[4] = {1, 2, 3, 4};
    ctx.store_tile(buf, 6, std::span<const float>(src, 4));
  });
  const auto rep = dev.sanitizer()->snapshot();
  ASSERT_EQ(count_kind(rep, IssueKind::kOutOfBounds), 1u);
  EXPECT_EQ(rep.issues[0].buffer, "short buffer");
  for (float v : dev.to_host(buf)) EXPECT_EQ(v, 0.0f);  // untouched
}

TEST(SimcheckTile, CatchesUninitializedReadThroughTilePath) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<float>(4, "never written");  // bug: alloc, no init
  launch(dev, {"uninit tile read", 1, 32}, [&](BlockCtx& ctx) {
    float sink = 0;
    ctx.for_each_elem(buf, 0, 4, [&](std::size_t, float v) { sink += v; });
    (void)sink;
  });
  // Element-exact: every uninitialized element is reported, not one per tile.
  EXPECT_EQ(count_kind(dev.sanitizer()->snapshot(),
                       IssueKind::kUninitDeviceRead),
            4u);
}

TEST(SimcheckTile, StoreTileSeedsShadowValidity) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<float>(8, "produced");
  launch(dev, {"tile roundtrip", 1, 32}, [&](BlockCtx& ctx) {
    const float src[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    ctx.store_tile(buf, 0, std::span<const float>(src, 8));
    const auto back = ctx.load_tile(buf, 0, 8);
    ASSERT_EQ(back.size(), 8u);
    EXPECT_EQ(back[5], 5.0f);
  });
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

TEST(SimcheckTile, ScatterWriterShadowsPerElementUnderSanitizer) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  dev.enable_sanitizer();
  auto buf = dev.alloc<float>(8, "scatter target");
  launch(dev, {"bad scatter", 1, 32}, [&](BlockCtx& ctx) {
    auto w = ctx.scatter_writer(buf, 3);
    w.put(0, 1.0f);
    w.put(7, 2.0f);
    w.put(12, 3.0f);  // bug: element 12 of an 8-element buffer
  });
  const auto rep = dev.sanitizer()->snapshot();
  ASSERT_EQ(count_kind(rep, IssueKind::kOutOfBounds), 1u);
  EXPECT_EQ(rep.issues[0].index, 12u);
  const auto host = dev.to_host(buf);
  EXPECT_EQ(host[0], 1.0f);
  EXPECT_EQ(host[7], 2.0f);
}

TEST(SimcheckTile, UncheckedSharedDataNullUnderSanitizer) {
  TileGuard guard;
  set_tile_path_enabled(true);
  Device dev;
  dev.enable_sanitizer();
  launch(dev, {"shraw gated", 1, 32}, [&](BlockCtx& ctx) {
    auto sh = ctx.shared_zero<std::uint32_t>(16, "hist");
    EXPECT_EQ(sh.unchecked_data(), nullptr);  // raw escape must stay shadowed
  });
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

}  // namespace
}  // namespace simgpu
