// Unit tests for the host-side SIMD helpers behind the warpfast scan path
// (simgpu/simd.hpp).  Each dispatcher is checked against an independent
// reference, and — when the host supports AVX-512F — the vector body is
// additionally checked against the portable scalar fallback so both halves
// of the runtime dispatch stay in agreement.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "simgpu/simd.hpp"

namespace simgpu::simd {
namespace {

std::uint32_t ref_ord(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, sizeof(b));
  return (b & 0x80000000u) ? ~b : (b | 0x80000000u);
}

TEST(Sort32, MatchesStdSortAcrossRandomBatches) {
  std::mt19937_64 rng(0x5017);
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint64_t v[32];
    for (auto& x : v) x = rng();
    // Mix in duplicates and the ~0 pad value short batches use.
    if (trial % 3 == 0) {
      for (int i = 0; i < 8; ++i) v[(trial + i * 5) % 32] = v[trial % 32];
    }
    if (trial % 4 == 0) {
      for (int i = 28; i < 32; ++i) v[i] = ~std::uint64_t{0};
    }
    std::uint64_t expect[32];
    std::copy(std::begin(v), std::end(v), std::begin(expect));
    std::sort(std::begin(expect), std::end(expect));
    sort32_u64(v);
    EXPECT_TRUE(std::equal(std::begin(v), std::end(v), std::begin(expect)))
        << "trial " << trial;
  }
}

TEST(Sort32, ScalarFallbackMatchesStdSort) {
  std::mt19937_64 rng(0xFA11);
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint64_t v[32];
    for (auto& x : v) x = rng() % (trial % 7 == 0 ? 16 : ~std::uint64_t{0});
    std::uint64_t expect[32];
    std::copy(std::begin(v), std::end(v), std::begin(expect));
    std::sort(std::begin(expect), std::end(expect));
    detail::sort32_u64_scalar(v);
    EXPECT_TRUE(std::equal(std::begin(v), std::end(v), std::begin(expect)))
        << "trial " << trial;
  }
}

TEST(CountBelow, MatchesScalarLoopAtEveryLength) {
  std::mt19937_64 rng(0xC0DE);
  std::normal_distribution<float> dist(0.0f, 2.0f);
  for (std::size_t n = 0; n <= 67; ++n) {  // covers empty, tails, 4x16 + tail
    std::vector<float> v(n);
    for (auto& x : v) x = dist(rng);
    if (n > 3) v[n / 2] = v[0];  // exact duplicate of a potential threshold
    for (const float threshold :
         {0.0f, v.empty() ? 1.0f : v[0], -1.5f,
          std::numeric_limits<float>::infinity()}) {
      std::size_t expect = 0;
      for (float x : v) expect += static_cast<std::size_t>(x < threshold);
      EXPECT_EQ(count_below_f32(v.data(), n, threshold), expect)
          << "n=" << n << " threshold=" << threshold;
    }
  }
}

TEST(CountBelow, StrictCompareExcludesEqualAndNan) {
  const float v[] = {1.0f, 2.0f, 2.0f, std::numeric_limits<float>::quiet_NaN(),
                     -2.0f, 3.0f};
  // Strictly-below 2.0: only 1.0 and -2.0.  NaN compares false (ordered
  // compare in the vector body, IEEE semantics in the scalar one).
  EXPECT_EQ(count_below_f32(v, 6, 2.0f), 2u);
}

TEST(PackBelow, PacksOrdinalsAndIndicesInLaneOrder) {
  std::mt19937_64 rng(0xBE10);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (std::size_t n = 0; n <= 32; ++n) {
    std::vector<float> v(n);
    for (auto& x : v) x = dist(rng);
    if (n > 2) v[1] = 0.25f;  // equal-to-threshold lane must be excluded
    const float threshold = 0.25f;

    std::vector<std::uint64_t> expect;
    for (std::size_t i = 0; i < n; ++i) {
      if (v[i] < threshold) {
        expect.push_back((static_cast<std::uint64_t>(ref_ord(v[i])) << 32) |
                         (1000u + static_cast<std::uint32_t>(i)));
      }
    }
    std::vector<std::uint64_t> out(n + 1, 0xAAu);
    const std::size_t m =
        pack_below_f32(v.data(), nullptr, 1000u, n, threshold, out.data());
    ASSERT_EQ(m, expect.size()) << "n=" << n;
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out.begin()))
        << "n=" << n;
  }
}

TEST(PackBelow, UsesExternalIndicesWhenGiven) {
  const float v[] = {-3.0f, 5.0f, -1.0f, 0.0f};
  const std::uint32_t idx[] = {70u, 71u, 72u, 73u};
  std::uint64_t out[4];
  const std::size_t m = pack_below_f32(v, idx, 0u, 4, 0.0f, out);
  ASSERT_EQ(m, 2u);
  EXPECT_EQ(static_cast<std::uint32_t>(out[0]), 70u);
  EXPECT_EQ(static_cast<std::uint32_t>(out[1]), 72u);
  EXPECT_EQ(static_cast<std::uint32_t>(out[0] >> 32), ref_ord(-3.0f));
  EXPECT_EQ(static_cast<std::uint32_t>(out[1] >> 32), ref_ord(-1.0f));
}

TEST(MergeSorted, KeepsSmallestOfUnionAcrossShapes) {
  std::mt19937_64 rng(0x4E46);
  for (int trial = 0; trial < 1500; ++trial) {
    // Cover the vector-path shape (an % 8 == 0, outn == an) and ragged
    // scalar shapes, with b lengths crossing the 8-lane tail handling.
    const std::size_t an = trial % 2 == 0 ? 8 * (1 + rng() % 40)
                                          : 1 + rng() % 300;
    const std::size_t bn = 1 + rng() % 41;
    const std::size_t outn = trial % 3 == 0
                                 ? std::min<std::size_t>(an, 8 * (rng() % 5))
                                 : an;
    std::vector<std::uint64_t> a(an), b(bn);
    for (auto& x : a) x = rng() % 512;  // force duplicates within and across
    for (auto& x : b) x = rng() % 512;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::uint64_t> expect;
    expect.reserve(an + bn);
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(expect));
    expect.resize(outn);
    std::vector<std::uint64_t> out(outn + 1, 0x5EEDu);
    merge_sorted_u64(a.data(), an, b.data(), bn, out.data(), outn);
    ASSERT_TRUE(std::equal(expect.begin(), expect.end(), out.begin()))
        << "trial " << trial << " an=" << an << " bn=" << bn
        << " outn=" << outn;
    EXPECT_EQ(out[outn], 0x5EEDu);  // no overwrite past outn
  }
}

TEST(MergeSorted, EmptySideCopiesTheOther) {
  const std::uint64_t a[] = {1, 3, 5};
  std::uint64_t out[3] = {};
  merge_sorted_u64(a, 3, nullptr, 0, out, 3);
  EXPECT_TRUE(std::equal(a, a + 3, out));
  merge_sorted_u64(nullptr, 0, a, 3, out, 2);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 3u);
}

TEST(PackBelow, OrdinalMapIsMonotone) {
  // The packed high word must order exactly like the source floats so the
  // engine's sorted-queue invariants carry over.
  const float seq[] = {-std::numeric_limits<float>::infinity(), -100.5f,
                       -1.0f,  -0.0f,
                       0.0f,   1e-20f,
                       3.25f,  std::numeric_limits<float>::infinity()};
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < std::size(seq); ++i) {
    const std::uint32_t ord = ref_ord(seq[i]);
    if (i > 0) {
      EXPECT_LE(prev, ord) << "at " << seq[i];
    }
    prev = ord;
  }
  // And -0.0f / 0.0f map to ordered (equal-comparing floats may differ in
  // ordinal, but must respect float ordering).
  EXPECT_LE(ref_ord(-0.0f), ref_ord(0.0f));
}

#if SIMGPU_SIMD_X86
TEST(Dispatch, Avx512BodiesAgreeWithScalarFallbacks) {
  if (!have_avx512f()) GTEST_SKIP() << "host lacks AVX-512F";
  std::mt19937_64 rng(0xD15A);
  std::normal_distribution<float> dist(0.0f, 3.0f);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = 1 + rng() % 32;
    std::vector<float> v(n);
    for (auto& x : v) x = dist(rng);
    const float threshold = dist(rng);

    std::size_t scalar_count = 0;
    for (float x : v) scalar_count += static_cast<std::size_t>(x < threshold);
    EXPECT_EQ(detail::count_below_f32_avx512(v.data(), n, threshold),
              scalar_count);

    std::vector<std::uint64_t> a(n), b(n);
    const std::size_t ma = detail::pack_below_f32_avx512(
        v.data(), nullptr, 42u, n, threshold, a.data());
    std::size_t mb = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (v[i] < threshold) {
        b[mb++] = (static_cast<std::uint64_t>(ref_ord(v[i])) << 32) |
                  (42u + static_cast<std::uint32_t>(i));
      }
    }
    ASSERT_EQ(ma, mb) << "trial " << trial;
    EXPECT_TRUE(std::equal(b.begin(), b.begin() + mb, a.begin()));

    std::uint64_t s[32];
    for (auto& x : s) x = rng();
    std::uint64_t t[32];
    std::copy(std::begin(s), std::end(s), std::begin(t));
    detail::sort32_u64_avx512(s);
    detail::sort32_u64_scalar(t);
    EXPECT_TRUE(std::equal(std::begin(s), std::end(s), std::begin(t)));
  }
}
#endif  // SIMGPU_SIMD_X86

}  // namespace
}  // namespace simgpu::simd
