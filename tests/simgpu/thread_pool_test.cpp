#include "simgpu/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace simgpu {
namespace {

TEST(ThreadPool, RunsEveryBlockExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kBlocks = 1000;
  std::vector<std::atomic<int>> hits(kBlocks);
  pool.run_blocks(kBlocks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "block " << i;
  }
}

TEST(ThreadPool, ZeroBlocksIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.run_blocks(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.run_blocks(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_blocks(64,
                      [&](std::size_t i) {
                        if (i == 13) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotPoisonLaterBatches) {
  ThreadPool pool(4);
  try {
    pool.run_blocks(8, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.run_blocks(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, SequentialBatchesSeeEachOthersWrites) {
  ThreadPool pool(4);
  std::vector<int> data(256, 0);
  pool.run_blocks(256, [&](std::size_t i) { data[i] = static_cast<int>(i); });
  long long sum = 0;
  pool.run_blocks(1, [&](std::size_t) {
    sum = std::accumulate(data.begin(), data.end(), 0LL);
  });
  EXPECT_EQ(sum, 255LL * 256 / 2);
}

TEST(ThreadPool, ManyBlocksWithContention) {
  ThreadPool& pool = ThreadPool::instance();
  std::atomic<long long> total{0};
  pool.run_blocks(10000,
                  [&](std::size_t i) { total.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(total.load(), 9999LL * 10000 / 2);
}

}  // namespace
}  // namespace simgpu
