#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"

namespace topk::test {

/// Run `algo` on `data` (single problem) and assert full correctness against
/// the std::nth_element reference.
inline void expect_correct(simgpu::Device& dev, std::span<const float> data,
                           std::size_t k, Algo algo,
                           const SelectOptions& opt = {}) {
  const SelectResult r = select(dev, data, k, algo, opt);
  const std::string err = verify_topk(data, k, r);
  EXPECT_TRUE(err.empty()) << algo_name(algo) << " n=" << data.size()
                           << " k=" << k << ": " << err;
}

/// The standard distribution sweep used by per-algorithm correctness tests.
inline std::vector<data::DistributionSpec> standard_distributions() {
  using data::Distribution;
  return {
      {Distribution::kUniform, 0},
      {Distribution::kNormal, 0},
      {Distribution::kAdversarial, 10},
      {Distribution::kAdversarial, 20},
  };
}

struct SweepCase {
  std::size_t n;
  std::size_t k;
};

inline std::string sweep_case_name(
    const ::testing::TestParamInfo<SweepCase>& info) {
  return "n" + std::to_string(info.param.n) + "_k" +
         std::to_string(info.param.k);
}

}  // namespace topk::test
