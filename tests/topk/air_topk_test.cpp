#include "topk/air_topk.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

using test::expect_correct;
using test::standard_distributions;
using test::SweepCase;

class AirTopkSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AirTopkSweep, CorrectOnAllDistributions) {
  simgpu::Device dev;
  const auto [n, k] = GetParam();
  std::uint64_t seed = 42;
  for (const auto& spec : standard_distributions()) {
    const auto values = data::generate(spec, n, seed++);
    expect_correct(dev, values, k, Algo::kAirTopk);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AirTopkSweep,
    ::testing::Values(SweepCase{1, 1}, SweepCase{2, 1}, SweepCase{2, 2},
                      SweepCase{100, 7}, SweepCase{1000, 1},
                      SweepCase{1000, 999}, SweepCase{1000, 1000},
                      SweepCase{4096, 64}, SweepCase{10000, 100},
                      SweepCase{32768, 2048}, SweepCase{100000, 31},
                      SweepCase{1 << 18, 4096}, SweepCase{1 << 18, 100000}),
    test::sweep_case_name);

TEST(AirTopk, HandlesDuplicateHeavyInput) {
  simgpu::Device dev;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> few(0, 3);
  std::vector<float> values(20000);
  for (float& v : values) v = static_cast<float>(few(rng));
  expect_correct(dev, values, 500, Algo::kAirTopk);
  expect_correct(dev, values, 5000, Algo::kAirTopk);
}

TEST(AirTopk, HandlesAllEqualInput) {
  simgpu::Device dev;
  std::vector<float> values(5000, 3.25f);
  expect_correct(dev, values, 1, Algo::kAirTopk);
  expect_correct(dev, values, 137, Algo::kAirTopk);
  expect_correct(dev, values, 5000, Algo::kAirTopk);
}

TEST(AirTopk, HandlesNegativesAndZeros) {
  simgpu::Device dev;
  std::vector<float> values;
  std::mt19937 rng(11);
  std::normal_distribution<float> dist(0.0f, 100.0f);
  for (int i = 0; i < 10000; ++i) values.push_back(dist(rng));
  values.push_back(0.0f);
  values.push_back(-0.0f);
  values.push_back(std::numeric_limits<float>::infinity());
  values.push_back(-std::numeric_limits<float>::infinity());
  values.push_back(std::numeric_limits<float>::lowest());
  values.push_back(std::numeric_limits<float>::max());
  values.push_back(std::numeric_limits<float>::denorm_min());
  expect_correct(dev, values, 50, Algo::kAirTopk);
  expect_correct(dev, values, 10000, Algo::kAirTopk);
}

TEST(AirTopk, SelectsLargestWithGreatestFlag) {
  simgpu::Device dev;
  const auto values = data::uniform_values(10000, 3);
  SelectOptions opt;
  opt.greatest = true;
  const SelectResult r = select(dev, values, 10, Algo::kAirTopk, opt);
  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<float> got = r.values;
  std::sort(got.begin(), got.end(), std::greater<>());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], sorted[static_cast<std::size_t>(i)]);
  }
}

TEST(AirTopk, BatchedResultsMatchPerProblemResults) {
  simgpu::Device dev;
  const std::size_t batch = 7, n = 5000, k = 33;
  const auto values = data::normal_values(batch * n, 5);
  const auto results = select_batch(dev, values, batch, n, k, Algo::kAirTopk);
  ASSERT_EQ(results.size(), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::span<const float> slice(values.data() + b * n, n);
    const std::string err = verify_topk(slice, k, results[b]);
    EXPECT_TRUE(err.empty()) << "problem " << b << ": " << err;
  }
}

TEST(AirTopk, BatchKernelCountIsIndependentOfBatchSize) {
  // The iteration-fused design launches the same number of kernels no matter
  // the batch size (paper §3.1).
  simgpu::Device dev;
  const auto count_kernels = [&](std::size_t batch) {
    const auto values = data::uniform_values(batch * 4096, 9);
    dev.clear_events();
    (void)select_batch(dev, values, batch, 4096, 32, Algo::kAirTopk);
    std::size_t kernels = 0;
    for (const auto& e : dev.events()) {
      kernels += std::holds_alternative<simgpu::KernelEvent>(e) ? 1u : 0u;
    }
    return kernels;
  };
  EXPECT_EQ(count_kernels(1), count_kernels(16));
}

TEST(AirTopk, NoHostDeviceTrafficDuringSelection) {
  simgpu::Device dev;
  const auto values = data::uniform_values(100000, 13);
  dev.clear_events();
  (void)select(dev, values, 1000, Algo::kAirTopk);
  for (const auto& e : dev.events()) {
    EXPECT_FALSE(std::holds_alternative<simgpu::MemcpyEvent>(e))
        << "AIR Top-K must not move data between host and device";
    EXPECT_FALSE(std::holds_alternative<simgpu::SyncEvent>(e))
        << "AIR Top-K must not synchronize with the host";
  }
}

TEST(AirTopk, AdaptiveStrategyAvoidsBufferTrafficOnAdversarialData) {
  simgpu::Device dev;
  const auto values = data::radix_adversarial_values(1 << 18, 20, 17);

  const auto traffic = [&](bool adaptive) {
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(values.size());
    std::copy(values.begin(), values.end(), in.data());
    auto out_v = dev.alloc<float>(100);
    auto out_i = dev.alloc<std::uint32_t>(100);
    dev.clear_events();
    AirTopkOptions o;
    o.adaptive = adaptive;
    air_topk(dev, in, 1, values.size(), 100, out_v, out_i, o);
    std::uint64_t bytes = 0;
    for (const auto& e : dev.events()) {
      if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
        bytes += ke->stats.bytes_total();
      }
    }
    return bytes;
  };

  const std::uint64_t with_adaptive = traffic(true);
  const std::uint64_t without = traffic(false);
  EXPECT_LT(with_adaptive, without)
      << "adaptive buffering must reduce traffic on adversarial data";
  // With M=20 identical leading bits the first pass keeps all N candidates;
  // the non-adaptive variant writes and re-reads them (16 extra bytes per
  // element), so the gap must be substantial.
  EXPECT_GT(static_cast<double>(without) / static_cast<double>(with_adaptive),
            1.5);
}

TEST(AirTopk, AdaptiveBufferShrinksPeakMemoryFootprint) {
  const auto values = data::uniform_values(1 << 18, 23);
  const auto peak = [&](bool adaptive) {
    simgpu::Device dev;
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(values.size());
    std::copy(values.begin(), values.end(), in.data());
    auto out_v = dev.alloc<float>(100);
    auto out_i = dev.alloc<std::uint32_t>(100);
    dev.reset_peak_live_bytes();
    AirTopkOptions o;
    o.adaptive = adaptive;
    air_topk(dev, in, 1, values.size(), 100, out_v, out_i, o);
    return dev.peak_live_bytes();
  };
  // Candidate buffers shrink from 2*N values+indices to 2*N/alpha (paper
  // §3.2: "the maximum size of the candidate buffer is N/alpha").
  EXPECT_LT(peak(true), peak(false) / 4);
}

TEST(AirTopk, EarlyStoppingReducesWorkWhenKEqualsN) {
  simgpu::Device dev;
  const std::size_t n = 1 << 16;
  const auto values = data::uniform_values(n, 29);
  const auto traffic = [&](bool early) {
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(n);
    std::copy(values.begin(), values.end(), in.data());
    auto out_v = dev.alloc<float>(n);
    auto out_i = dev.alloc<std::uint32_t>(n);
    dev.clear_events();
    AirTopkOptions o;
    o.early_stopping = early;
    air_topk(dev, in, 1, n, n, out_v, out_i, o);
    std::uint64_t ops = 0;
    for (const auto& e : dev.events()) {
      if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
        ops += ke->stats.lane_ops;
      }
    }
    return ops;
  };
  EXPECT_LT(traffic(true), traffic(false));
}

TEST(AirTopk, FusedLastFilterVariantIsCorrect) {
  simgpu::Device dev;
  std::uint64_t seed = 400;
  for (const auto& spec : standard_distributions()) {
    for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{1, 1},
                               {1000, 1000},
                               {10000, 137},
                               {1 << 16, 2048}}) {
      const auto values = data::generate(spec, n, seed++);
      expect_correct(dev, values, k, Algo::kAirTopkFusedFilter);
    }
  }
}

TEST(AirTopk, FusedLastFilterLaunchesOneFewerKernel) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 16, 77);
  const auto kernels = [&](Algo algo) {
    dev.clear_events();
    (void)select(dev, values, 100, algo);
    std::size_t count = 0;
    for (const auto& e : dev.events()) {
      count += std::holds_alternative<simgpu::KernelEvent>(e) ? 1u : 0u;
    }
    return count;
  };
  EXPECT_EQ(kernels(Algo::kAirTopkFusedFilter), kernels(Algo::kAirTopk) - 1);
}

TEST(AirTopk, FusedLastFilterSlowerOnAdversarialData) {
  // The §3.1 rationale for keeping the separate filter kernel.
  simgpu::Device dev;
  const auto values = data::radix_adversarial_values(1 << 18, 20, 3);
  const simgpu::CostModel model(dev.spec());
  const auto modeled = [&](Algo algo) {
    dev.clear_events();
    (void)select(dev, values, 2048, algo);
    return model.total_us(dev.events());
  };
  EXPECT_GT(modeled(Algo::kAirTopkFusedFilter), modeled(Algo::kAirTopk));
}

TEST(AirTopk, WorksWithUnsignedKeys) {
  simgpu::Device dev;
  const auto keys = data::uniform_u32(50000, 31);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<std::uint32_t>(keys.size());
  std::copy(keys.begin(), keys.end(), in.data());
  const std::size_t k = 777;
  auto out_v = dev.alloc<std::uint32_t>(k);
  auto out_i = dev.alloc<std::uint32_t>(k);
  air_topk(dev, in, 1, keys.size(), k, out_v, out_i);
  std::vector<std::uint32_t> got(out_v.data(), out_v.data() + k);
  std::vector<std::uint32_t> want(keys.begin(), keys.end());
  std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                   want.end());
  want.resize(k);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(keys[out_i.data()[i]], out_v.data()[i]);
  }
}

TEST(AirTopk, RejectsInvalidArguments) {
  simgpu::Device dev;
  auto in = dev.alloc<float>(100);
  auto out_v = dev.alloc<float>(10);
  auto out_i = dev.alloc<std::uint32_t>(10);
  EXPECT_THROW(air_topk(dev, in, 1, 100, 0, out_v, out_i),
               std::invalid_argument);
  EXPECT_THROW(air_topk(dev, in, 1, 100, 101, out_v, out_i),
               std::invalid_argument);
  EXPECT_THROW(air_topk(dev, in, 0, 100, 10, out_v, out_i),
               std::invalid_argument);
  EXPECT_THROW(air_topk(dev, in, 1, 100, 11, out_v, out_i),
               std::invalid_argument);  // outputs too small
  AirTopkOptions bad;
  bad.alpha = 2;
  EXPECT_THROW(air_topk(dev, in, 1, 100, 10, out_v, out_i, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk
