#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

using test::standard_distributions;

struct MatrixCase {
  Algo algo;
  std::size_t n;
  std::size_t k;
};

std::string matrix_case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = algo_name(info.param.algo);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_n" + std::to_string(info.param.n) + "_k" +
         std::to_string(info.param.k);
}

class AlgorithmMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(AlgorithmMatrix, CorrectOnAllDistributions) {
  simgpu::Device dev;
  const auto [algo, n, k] = GetParam();
  ASSERT_LE(k, max_k(algo, n)) << "bad test case";
  std::uint64_t seed = 7777;
  for (const auto& spec : standard_distributions()) {
    const auto values = data::generate(spec, n, seed++);
    const SelectResult r = select(dev, values, k, algo);
    const std::string err = verify_topk(values, k, r);
    EXPECT_TRUE(err.empty())
        << algo_name(algo) << " on " << spec.name() << ": " << err;
  }
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (Algo algo : all_algorithms()) {
    for (const auto& [n, k] : std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1},
             {33, 4},
             {1000, 1},
             {1000, 100},
             {4096, 256},
             {100000, 17},
             {1 << 17, 2048},
             {1 << 17, 30000},
         }) {
      if (k > max_k(algo, n)) continue;
      cases.push_back({algo, n, k});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, AlgorithmMatrix,
                         ::testing::ValuesIn(matrix_cases()),
                         matrix_case_name);

class BatchMatrix : public ::testing::TestWithParam<Algo> {};

TEST_P(BatchMatrix, BatchedResultsAreCorrectPerProblem) {
  simgpu::Device dev;
  const Algo algo = GetParam();
  const std::size_t batch = 5, n = 3000;
  const std::size_t k = std::min<std::size_t>(64, max_k(algo, n));
  const auto values = data::normal_values(batch * n, 1234);
  const auto results = select_batch(dev, values, batch, n, k, algo);
  ASSERT_EQ(results.size(), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::span<const float> slice(values.data() + b * n, n);
    const std::string err = verify_topk(slice, k, results[b]);
    EXPECT_TRUE(err.empty()) << algo_name(algo) << " problem " << b << ": "
                             << err;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, BatchMatrix,
    ::testing::Values(Algo::kAirTopk, Algo::kGridSelect, Algo::kRadixSelect,
                      Algo::kWarpSelect, Algo::kBlockSelect,
                      Algo::kBitonicTopk, Algo::kQuickSelect,
                      Algo::kBucketSelect, Algo::kSampleSelect, Algo::kSort),
    [](const ::testing::TestParamInfo<Algo>& info) {
      std::string name = algo_name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(AllAlgorithms, DuplicateHeavyInputIsHandledEverywhere) {
  simgpu::Device dev;
  std::vector<float> values(30000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i % 5);
  }
  for (Algo algo : all_algorithms()) {
    const std::size_t k = std::min<std::size_t>(100, max_k(algo, values.size()));
    const SelectResult r = select(dev, values, k, algo);
    const std::string err = verify_topk(values, k, r);
    EXPECT_TRUE(err.empty()) << algo_name(algo) << ": " << err;
  }
}

TEST(AllAlgorithms, AllEqualInput) {
  simgpu::Device dev;
  std::vector<float> values(10000, 2.5f);
  for (Algo algo : all_algorithms()) {
    const std::size_t k = std::min<std::size_t>(64, max_k(algo, values.size()));
    const SelectResult r = select(dev, values, k, algo);
    const std::string err = verify_topk(values, k, r);
    EXPECT_TRUE(err.empty()) << algo_name(algo) << ": " << err;
  }
}

TEST(AllAlgorithms, NegativeValuesAndWideRange) {
  simgpu::Device dev;
  std::vector<float> values = data::normal_values(20000, 99);
  for (float& v : values) v *= 1e20f;
  for (Algo algo : all_algorithms()) {
    const std::size_t k = std::min<std::size_t>(50, max_k(algo, values.size()));
    const SelectResult r = select(dev, values, k, algo);
    const std::string err = verify_topk(values, k, r);
    EXPECT_TRUE(err.empty()) << algo_name(algo) << ": " << err;
  }
}

TEST(AllAlgorithms, KEqualsNReturnsEverything) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1500, 5);
  for (Algo algo : all_algorithms()) {
    if (max_k(algo, values.size()) < values.size()) continue;
    const SelectResult r = select(dev, values, values.size(), algo);
    const std::string err = verify_topk(values, values.size(), r);
    EXPECT_TRUE(err.empty()) << algo_name(algo) << ": " << err;
  }
}

TEST(AllAlgorithms, MaxKLimitsMatchPaper) {
  EXPECT_EQ(max_k(Algo::kBitonicTopk, 1 << 20), 256u);
  EXPECT_EQ(max_k(Algo::kWarpSelect, 1 << 20), 2048u);
  EXPECT_EQ(max_k(Algo::kBlockSelect, 1 << 20), 2048u);
  EXPECT_EQ(max_k(Algo::kGridSelect, 1 << 20), 2048u);
  EXPECT_EQ(max_k(Algo::kAirTopk, 1 << 20), std::size_t{1} << 20);
  EXPECT_EQ(max_k(Algo::kSort, 100), 100u);
}

TEST(AllAlgorithms, AlgoNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (Algo algo : all_algorithms()) names.push_back(algo_name(algo));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

}  // namespace
}  // namespace topk
