// Batched-correctness sweep: every registry algorithm is driven through
// select_batch over a grid of serving-shaped micro-batches — the many-row /
// small-n regime the fused row-wise family targets — in both selection
// orders.  The single-problem matrix in all_algorithms_test covers depth in
// n and k; this sweep covers width in batch, where the row loop (or the
// fused single launch) is the code under test.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

struct SweepCase {
  Algo algo;
  std::size_t batch;
  std::size_t n;
  std::size_t k;
  bool greatest;
};

std::string sweep_case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = algo_name(info.param.algo);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_b" + std::to_string(info.param.batch) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
         (info.param.greatest ? "_greatest" : "_least");
}

/// Per-row verification that honors the selection order: indices in range
/// and distinct, values faithful to data[index], and the selected value
/// multiset equal to the reference multiset under the requested comparator.
std::string verify_row(std::span<const float> row, std::size_t k,
                       bool greatest, const SelectResult& r) {
  if (r.values.size() != k || r.indices.size() != k) {
    return "result size mismatch";
  }
  std::vector<bool> seen(row.size(), false);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t idx = r.indices[i];
    if (idx >= row.size()) return "index out of range";
    if (seen[idx]) return "duplicate index";
    seen[idx] = true;
    if (row[idx] != r.values[i]) return "value does not match data[index]";
  }
  std::vector<float> want(row.begin(), row.end());
  if (greatest) {
    std::partial_sort(want.begin(), want.begin() + k, want.end(),
                      std::greater<>());
  } else {
    std::partial_sort(want.begin(), want.begin() + k, want.end());
  }
  want.resize(k);
  std::vector<float> got = r.values;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got != want) return "selected multiset differs from reference";
  return {};
}

class BatchedSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BatchedSweep, EveryRowCorrectInBothOrders) {
  simgpu::Device dev;
  const auto [algo, batch, n, k, greatest] = GetParam();
  ASSERT_LE(k, max_k(algo, n)) << "bad test case";
  const auto values =
      data::uniform_values(batch * n, 0x5EED0000u + batch + n + k);
  SelectOptions opt;
  opt.greatest = greatest;
  const auto results = select_batch(dev, values, batch, n, k, algo, opt);
  ASSERT_EQ(results.size(), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const float> row(values.data() + b * n, n);
    const std::string err = verify_row(row, k, greatest, results[b]);
    ASSERT_TRUE(err.empty()) << algo_name(algo) << " row " << b << " (batch="
                             << batch << ", n=" << n << ", k=" << k
                             << (greatest ? ", greatest" : ", least")
                             << "): " << err;
  }
}

std::vector<SweepCase> sweep_cases() {
  // batch=64 sweeps n across the fused-warp band and past it; batch=1000 is
  // pinned to the serving acceptance shape (n=2^12) so the whole sweep stays
  // inside CI budget.  k brackets the thread-queue regime.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {64, std::size_t{1} << 10},
      {64, std::size_t{1} << 12},
      {64, std::size_t{1} << 14},
      {1000, std::size_t{1} << 12},
  };
  std::vector<SweepCase> cases;
  for (Algo algo : all_algorithms()) {
    for (const auto& [batch, n] : shapes) {
      for (std::size_t k : {std::size_t{8}, std::size_t{64}}) {
        if (k > max_k(algo, n)) continue;
        for (bool greatest : {false, true}) {
          cases.push_back({algo, batch, n, k, greatest});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Registry, BatchedSweep,
                         ::testing::ValuesIn(sweep_cases()), sweep_case_name);

}  // namespace
}  // namespace topk
