// Batched-correctness sweep: every registry algorithm is driven through
// select_batch over a grid of serving-shaped micro-batches — the many-row /
// small-n regime the fused row-wise family targets — in both selection
// orders.  The single-problem matrix in all_algorithms_test covers depth in
// n and k; this sweep covers width in batch, where the row loop (or the
// fused single launch) is the code under test.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "topk/key_codec.hpp"

namespace topk {
namespace {

struct SweepCase {
  Algo algo;
  std::size_t batch;
  std::size_t n;
  std::size_t k;
  bool greatest;
};

std::string sweep_case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = algo_name(info.param.algo);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_b" + std::to_string(info.param.batch) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
         (info.param.greatest ? "_greatest" : "_least");
}

/// Per-row verification that honors the selection order: indices in range
/// and distinct, values faithful to data[index], and the selected value
/// multiset equal to the reference multiset under the requested comparator.
std::string verify_row(std::span<const float> row, std::size_t k,
                       bool greatest, const SelectResult& r) {
  if (r.values.size() != k || r.indices.size() != k) {
    return "result size mismatch";
  }
  std::vector<bool> seen(row.size(), false);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t idx = r.indices[i];
    if (idx >= row.size()) return "index out of range";
    if (seen[idx]) return "duplicate index";
    seen[idx] = true;
    if (row[idx] != r.values[i]) return "value does not match data[index]";
  }
  std::vector<float> want(row.begin(), row.end());
  if (greatest) {
    std::partial_sort(want.begin(), want.begin() + k, want.end(),
                      std::greater<>());
  } else {
    std::partial_sort(want.begin(), want.begin() + k, want.end());
  }
  want.resize(k);
  std::vector<float> got = r.values;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got != want) return "selected multiset differs from reference";
  return {};
}

class BatchedSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BatchedSweep, EveryRowCorrectInBothOrders) {
  simgpu::Device dev;
  const auto [algo, batch, n, k, greatest] = GetParam();
  ASSERT_LE(k, max_k(algo, n)) << "bad test case";
  const auto values =
      data::uniform_values(batch * n, 0x5EED0000u + batch + n + k);
  SelectOptions opt;
  opt.greatest = greatest;
  const auto results = select_batch(dev, values, batch, n, k, algo, opt);
  ASSERT_EQ(results.size(), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const float> row(values.data() + b * n, n);
    const std::string err = verify_row(row, k, greatest, results[b]);
    ASSERT_TRUE(err.empty()) << algo_name(algo) << " row " << b << " (batch="
                             << batch << ", n=" << n << ", k=" << k
                             << (greatest ? ", greatest" : ", least")
                             << "): " << err;
  }
}

std::vector<SweepCase> sweep_cases() {
  // batch=64 sweeps n across the fused-warp band and past it; batch=1000 is
  // pinned to the serving acceptance shape (n=2^12) so the whole sweep stays
  // inside CI budget.  k brackets the thread-queue regime.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {64, std::size_t{1} << 10},
      {64, std::size_t{1} << 12},
      {64, std::size_t{1} << 14},
      {1000, std::size_t{1} << 12},
  };
  std::vector<SweepCase> cases;
  for (Algo algo : all_algorithms()) {
    for (const auto& [batch, n] : shapes) {
      for (std::size_t k : {std::size_t{8}, std::size_t{64}}) {
        if (k > max_k(algo, n)) continue;
        for (bool greatest : {false, true}) {
          cases.push_back({algo, batch, n, k, greatest});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Registry, BatchedSweep,
                         ::testing::ValuesIn(sweep_cases()), sweep_case_name);

// ---- dtype x payload matrix -----------------------------------------------
// The same batched sweep through the typed entry points: every KeyType on a
// representative algorithm of each carrier family, with every PayloadKind
// (none / u32 / u64), verified per row in the key's ordinal domain.

struct TypedSweepCase {
  Algo algo;
  KeyType dtype;
  PayloadKind payload;  // kNone = no payload view passed
  std::size_t batch;
  std::size_t n;
  std::size_t k;
  bool greatest;
};

std::string typed_case_name(
    const ::testing::TestParamInfo<TypedSweepCase>& info) {
  std::string name = algo_name(info.param.algo) + "_" +
                     std::string(key_type_name(info.param.dtype));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  const char* pay = info.param.payload == PayloadKind::kNone  ? "nopay"
                    : info.param.payload == PayloadKind::kU32 ? "pay32"
                                                              : "pay64";
  return name + "_" + pay + "_b" + std::to_string(info.param.batch) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
         (info.param.greatest ? "_greatest" : "_least");
}

/// 64-bit monotone ordinal of a key's storage bits, per dtype.
std::uint64_t bits_ordinal(KeyType t, std::uint32_t bits) {
  switch (t) {
    case KeyType::kF32:
      return RadixTraits<float>::to_radix(std::bit_cast<float>(bits));
    case KeyType::kF16:
      return RadixTraits<half>::to_radix(
          half::from_bits(static_cast<std::uint16_t>(bits)));
    case KeyType::kBF16:
      return RadixTraits<bf16>::to_radix(
          bf16::from_bits(static_cast<std::uint16_t>(bits)));
    case KeyType::kI32:
      return RadixTraits<std::int32_t>::to_radix(
          std::bit_cast<std::int32_t>(bits));
    case KeyType::kU32:
      return bits;
  }
  return 0;
}

class TypedBatchedSweep : public ::testing::TestWithParam<TypedSweepCase> {};

TEST_P(TypedBatchedSweep, EveryRowCorrectInOrdinalDomain) {
  simgpu::Device dev;
  const auto [algo, dtype, payload_kind, batch, n, k, greatest] = GetParam();
  const std::size_t total = batch * n;
  // Generate floats, then store per dtype; keep each key's storage bits.
  const auto values =
      data::uniform_values(total, 0x7E57u + total + k + (greatest ? 1 : 0));
  std::vector<half> f16;
  std::vector<bf16> b16;
  std::vector<std::int32_t> i32;
  std::vector<std::uint32_t> u32;
  std::vector<std::uint32_t> bits(total);
  KeyView kv;
  switch (dtype) {
    case KeyType::kF32:
      for (std::size_t i = 0; i < total; ++i) {
        bits[i] = std::bit_cast<std::uint32_t>(values[i]);
      }
      kv = KeyView::of(std::span<const float>(values));
      break;
    case KeyType::kF16:
      for (std::size_t i = 0; i < total; ++i) {
        f16.emplace_back(values[i]);
        bits[i] = f16.back().bits();
      }
      kv = KeyView::of(std::span<const half>(f16));
      break;
    case KeyType::kBF16:
      for (std::size_t i = 0; i < total; ++i) {
        b16.emplace_back(values[i]);
        bits[i] = b16.back().bits();
      }
      kv = KeyView::of(std::span<const bf16>(b16));
      break;
    case KeyType::kI32:
      for (std::size_t i = 0; i < total; ++i) {
        i32.push_back(
            static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(values[i])));
        bits[i] = std::bit_cast<std::uint32_t>(i32.back());
      }
      kv = KeyView::of(std::span<const std::int32_t>(i32));
      break;
    case KeyType::kU32:
      for (std::size_t i = 0; i < total; ++i) {
        u32.push_back(std::bit_cast<std::uint32_t>(values[i]));
        bits[i] = u32.back();
      }
      kv = KeyView::of(std::span<const std::uint32_t>(u32));
      break;
  }
  std::vector<std::uint32_t> pay32;
  std::vector<std::uint64_t> pay64;
  PayloadView pv;
  if (payload_kind == PayloadKind::kU32) {
    pay32.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      pay32[i] = static_cast<std::uint32_t>(i * 7 + 3);
    }
    pv = PayloadView::of(std::span<const std::uint32_t>(pay32));
  } else if (payload_kind == PayloadKind::kU64) {
    pay64.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      pay64[i] = (static_cast<std::uint64_t>(i) << 33) | 1u;
    }
    pv = PayloadView::of(std::span<const std::uint64_t>(pay64));
  }

  SelectOptions opt;
  opt.greatest = greatest;
  const auto results = select_batch(dev, kv, batch, n, k, algo, opt, pv);
  ASSERT_EQ(results.size(), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const SelectResult& r = results[b];
    ASSERT_EQ(r.dtype, dtype);
    ASSERT_EQ(r.indices.size(), k);
    std::vector<bool> seen(n, false);
    std::vector<std::uint64_t> got(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint32_t idx = r.indices[i];
      ASSERT_LT(idx, n) << "row " << b;
      ASSERT_FALSE(seen[idx]) << "row " << b << ": duplicate index";
      seen[idx] = true;
      const std::uint32_t rb = dtype == KeyType::kF32
                                   ? std::bit_cast<std::uint32_t>(r.values[i])
                                   : r.values_bits[i];
      ASSERT_EQ(rb, bits[b * n + idx]) << "row " << b << " position " << i;
      got[i] = bits_ordinal(dtype, rb);
      if (payload_kind == PayloadKind::kU32) {
        ASSERT_EQ(r.payload[i], pay32[b * n + idx]) << "row " << b;
      } else if (payload_kind == PayloadKind::kU64) {
        ASSERT_EQ(r.payload[i], pay64[b * n + idx]) << "row " << b;
      } else {
        ASSERT_TRUE(r.payload.empty()) << "row " << b;
      }
    }
    std::vector<std::uint64_t> want(n);
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = bits_ordinal(dtype, bits[b * n + i]);
    }
    if (greatest) {
      std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                       want.end(), std::greater<>());
    } else {
      std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                       want.end());
    }
    want.resize(k);
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, want) << "row " << b << ": ordinal multiset differs";
  }
}

std::vector<TypedSweepCase> typed_sweep_cases() {
  // One algorithm per execution family: radixselect runs both carriers,
  // air covers the iteration-fused path, fused-warp the single-launch
  // row-wise path (float family only by its dtype mask).
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {16, std::size_t{1} << 10},
      {64, std::size_t{1} << 12},
  };
  const PayloadKind payloads[] = {PayloadKind::kNone, PayloadKind::kU32,
                                  PayloadKind::kU64};
  std::vector<TypedSweepCase> cases;
  for (const Algo algo :
       {Algo::kRadixSelect, Algo::kAirTopk, Algo::kFusedWarpRowwise}) {
    for (std::size_t ti = 0; ti < kNumKeyTypes; ++ti) {
      const auto dtype = static_cast<KeyType>(ti);
      if (!algo_supports_dtype(algo, dtype)) continue;
      for (const PayloadKind pk : payloads) {
        for (const auto& [batch, n] : shapes) {
          for (const bool greatest : {false, true}) {
            cases.push_back({algo, dtype, pk, batch, n, 32, greatest});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(DtypePayloadMatrix, TypedBatchedSweep,
                         ::testing::ValuesIn(typed_sweep_cases()),
                         typed_case_name);

}  // namespace
}  // namespace topk
