// Bucketed approximate tier (Algo::kBucketApprox).
//
// The exact-contract legs (default recall_target = 1.0) ride the shared
// suites — all_algorithms_test, batched_sweep_test, tile_invariance_test —
// because keep = k makes the tier exact by construction.  This file covers
// what those suites cannot: the analytic recall model against measured
// recall on the paper distributions and ANN datasets, the approximate
// contract (chunk-local exactness) under ties and duplicates in both
// directions, recall_target validation and routing at every entry point,
// and charge invariance of the approximate shape itself.

#include <algorithm>
#include <cmath>
#include <random>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/ann_dataset.hpp"
#include "data/distributions.hpp"
#include "data/recall.hpp"
#include "serve/service.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/bucket_approx.hpp"

namespace topk {
namespace {

using test::standard_distributions;

std::vector<SelectResult> run_approx(std::span<const float> data,
                                     std::size_t batch, std::size_t n,
                                     std::size_t k, const SelectOptions& opt) {
  simgpu::Device dev;
  return select_batch(dev, data, batch, n, k, Algo::kBucketApprox, opt);
}

// --- analytic expected-recall model ---------------------------------------

TEST(BucketApproxModel, ExpectedRecallBasics) {
  // keep >= k is the exact regime, exactly 1.0 (superset argument).
  EXPECT_EQ(bucket_approx_expected_recall(64, 8, 64), 1.0);
  EXPECT_EQ(bucket_approx_expected_recall(64, 8, 100), 1.0);
  // One chunk keeps its keep smallest: recall is exactly keep / k.
  EXPECT_DOUBLE_EQ(bucket_approx_expected_recall(100, 1, 37), 0.37);
  // Monotone in keep, and strictly below 1.0 when keep < k spreads thin.
  double prev = 0.0;
  for (std::size_t q = 1; q <= 64; ++q) {
    const double r = bucket_approx_expected_recall(64, 16, q);
    EXPECT_GE(r, prev) << "q=" << q;
    EXPECT_LE(r, 1.0);
    prev = r;
  }
  EXPECT_LT(bucket_approx_expected_recall(64, 16, 1), 1.0);
  // k = 2048 with few chunks is where a naive (1-p)^k pmf seed underflows;
  // the log-space pmf must still integrate to a sane recall.
  const double big = bucket_approx_expected_recall(2048, 2, 1024);
  EXPECT_GT(big, 0.5);
  EXPECT_LE(big, 1.0);
  EXPECT_THROW(bucket_approx_expected_recall(0, 4, 2), std::invalid_argument);
  EXPECT_THROW(bucket_approx_expected_recall(64, 0, 2), std::invalid_argument);
  EXPECT_THROW(bucket_approx_expected_recall(64, 4, 0), std::invalid_argument);
}

TEST(BucketApproxModel, ConfigureMeetsTargetAndValidates) {
  const simgpu::DeviceSpec spec;
  for (const double rt : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    BucketApproxOptions opt;
    opt.recall_target = rt;
    const auto s =
        bucket_approx_configure(std::size_t{1} << 20, 256, 1, opt, spec);
    EXPECT_GE(s.expected_recall, rt) << "rt=" << rt;
    EXPECT_GE(s.keep, (256 + s.chunks - 1) / s.chunks);
    EXPECT_GE(std::size_t{1} << 20, s.chunks * s.keep);
  }
  // rt = 1.0 must force keep = k — the only analytically exact shape.
  BucketApproxOptions exact;
  const auto s =
      bucket_approx_configure(std::size_t{1} << 16, 100, 1, exact, spec);
  EXPECT_EQ(s.keep, 100u);
  EXPECT_EQ(s.expected_recall, 1.0);
  for (const double bad : {0.0, -0.5, 1.5}) {
    BucketApproxOptions opt;
    opt.recall_target = bad;
    EXPECT_THROW(
        bucket_approx_configure(std::size_t{1} << 16, 64, 1, opt, spec),
        std::invalid_argument)
        << "rt=" << bad;
  }
  // Every audit-grid shape must configure feasibly in the exact regime.
  for (const auto& [n, k] :
       {std::pair<std::size_t, std::size_t>{999, 1},
        {4096, 64},
        {70001, 517},
        {10007, 100},
        {std::size_t{1} << 22, 2048}}) {
    const auto shape = bucket_approx_configure(n, k, 1, exact, spec);
    EXPECT_GE(n / shape.chunks, shape.keep) << "n=" << n << " k=" << k;
  }
}

// --- measured recall vs the model -----------------------------------------

TEST(BucketApproxRecall, MeasuredMatchesModelOnPaperDistributions) {
  const std::size_t n = std::size_t{1} << 16;
  const std::size_t k = 256;
  const std::size_t batch = 8;
  std::uint64_t seed = 101;
  for (const auto& dist : standard_distributions()) {
    for (const double rt : {0.8, 0.9, 0.95}) {
      const auto values = data::generate(dist, batch * n, seed++);
      SelectOptions opt;
      opt.recall_target = rt;
      const auto results = run_approx(values, batch, n, k, opt);
      BucketApproxOptions bopt;
      bopt.recall_target = rt;
      const auto shape =
          bucket_approx_configure(n, k, batch, bopt, simgpu::DeviceSpec{});
      double total = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        const std::span<const float> row(values.data() + b * n, n);
        const auto exact = data::exact_topk_values(row, k);
        total += data::recall_at_k(results[b].values, exact);
      }
      const double measured = total / static_cast<double>(batch);
      EXPECT_GE(measured, rt) << dist.name() << " rt=" << rt;
      // The binomial model should track measurement tightly: positions of
      // the top-k are iid across chunks for all three generators.
      EXPECT_NEAR(measured, shape.expected_recall, 0.05)
          << dist.name() << " rt=" << rt;
    }
  }
}

TEST(BucketApproxRecall, AnnDatasetDistancesMeetTarget) {
  // ANN re-rank is the motivating workload: top-k of L2 distances.
  const std::size_t count = std::size_t{1} << 14;
  const std::size_t k = 128;
  const double rt = 0.9;
  std::size_t ds_id = 0;
  for (const auto& ds : {data::make_deep_like(count, 7),
                         data::make_sift_like(count, 8)}) {
    const auto queries = data::make_queries(ds, 4, 99 + ds_id);
    const std::size_t dim = ds.vectors.size() / count;
    double total = 0.0;
    std::size_t rows = 0;
    for (std::size_t q = 0; q < 4; ++q) {
      const auto dists =
          data::l2_distances(ds, queries.data() + q * dim, count);
      SelectOptions opt;
      opt.recall_target = rt;
      const auto res = run_approx(dists, 1, count, k, opt)[0];
      total += data::recall_at_k(res.values, data::exact_topk_values(dists, k));
      ++rows;
    }
    EXPECT_GE(total / static_cast<double>(rows), rt) << "dataset " << ds_id;
    ++ds_id;
  }
}

// --- the approximate contract under ties and duplicates -------------------

// Chunk-local exactness is the tier's whole contract: the result must be
// exactly the k best of the union of each chunk's keep best, which
// bucket_approx_reference computes host-side.  Duplicate keys across a
// chunk boundary are the sharpest probe — dropping or double-counting a
// tied element at the boundary changes the multiset.
TEST(BucketApproxContract, BoundaryTiesAndDuplicates) {
  const std::size_t n = 4096;
  const std::size_t k = 64;
  BucketApproxOptions bopt;
  bopt.buckets = 8;
  bopt.keep = 16;  // C*q = 128 > k: refine mode
  const auto shape =
      bucket_approx_configure(n, k, 1, bopt, simgpu::DeviceSpec{});
  ASSERT_EQ(shape.chunks, 8u);
  ASSERT_EQ(shape.keep, 16u);

  std::mt19937 rng(4242);
  std::vector<float> values(n);
  // A handful of distinct levels so every chunk carries many exact
  // duplicates, and force ties straddling every chunk boundary.
  std::uniform_int_distribution<int> level(-4, 4);
  for (auto& v : values) v = static_cast<float>(level(rng));
  const std::size_t chunk_len = n / shape.chunks;
  for (std::size_t c = 1; c < shape.chunks; ++c) {
    values[c * chunk_len - 1] = -4.0f;
    values[c * chunk_len] = -4.0f;
  }

  for (const bool greatest : {false, true}) {
    simgpu::Device dev;
    SelectOptions opt;
    opt.greatest = greatest;
    // Route the explicit shape through the one-shot entry (SelectOptions
    // cannot carry bucket overrides); negate host-side for greatest, the
    // same wrap run_select applies.
    std::vector<float> input = values;
    if (greatest) {
      for (auto& v : input) v = -v;
    }
    auto in = dev.alloc<float>(n);
    std::copy(input.begin(), input.end(), in.data());
    auto out_vals = dev.alloc<float>(k);
    auto out_idx = dev.alloc<std::uint32_t>(k);
    bucket_approx(dev, in, 1, n, k, out_vals, out_idx, bopt);

    const auto expect = bucket_approx_reference(
        std::span<const float>(input), k, shape.chunks, shape.keep);
    std::vector<float> got(out_vals.data(), out_vals.data() + k);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "greatest=" << greatest;
    // Indices must witness their values in the original input.
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_LT(out_idx.data()[i], n);
      EXPECT_EQ(input[out_idx.data()[i]], out_vals.data()[i]) << "i=" << i;
    }
  }
}

// Direct-emit mode (C*q == k skips the refine launch) has its own store
// path; same contract, duplicates everywhere.
TEST(BucketApproxContract, DirectEmitMode) {
  const std::size_t n = 8192;
  const std::size_t k = 64;
  BucketApproxOptions bopt;
  bopt.buckets = 8;
  bopt.keep = 8;  // C*q == k: direct emit
  std::mt19937 rng(7);
  std::vector<float> values(n);
  std::uniform_int_distribution<int> level(0, 15);
  for (auto& v : values) v = static_cast<float>(level(rng));

  simgpu::Device dev;
  auto in = dev.alloc<float>(n);
  std::copy(values.begin(), values.end(), in.data());
  auto out_vals = dev.alloc<float>(k);
  auto out_idx = dev.alloc<std::uint32_t>(k);
  dev.clear_events();
  bucket_approx(dev, in, 1, n, k, out_vals, out_idx, bopt);

  std::size_t launches = 0;
  for (const auto& e : dev.events()) {
    if (std::holds_alternative<simgpu::KernelEvent>(e)) ++launches;
  }
  EXPECT_EQ(launches, 1u) << "direct mode must fuse away the refine launch";

  const auto expect =
      bucket_approx_reference(std::span<const float>(values), k, 8, 8);
  std::vector<float> got(out_vals.data(), out_vals.data() + k);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(values[out_idx.data()[i]], out_vals.data()[i]) << "i=" << i;
  }
}

// --- charge invariance of the approximate shape ---------------------------

// tile_invariance_test proves the exact shape (recall_target = 1.0); the
// approximate shape takes different store paths (candidate segments +
// refine), so prove its counters across the same 8-leg grid here.
TEST(BucketApproxInvariance, ApproximateShapeChargesAreModeInvariant) {
  struct Trace {
    std::vector<simgpu::KernelStats> kernels;
    double model_us = 0.0;
    std::vector<float> sorted_values;
  };
  const std::size_t n = 70001;
  const std::size_t k = 257;
  const auto values = data::generate(
      {data::Distribution::kAdversarial, 20}, n, 31337);
  SelectOptions opt;
  opt.recall_target = 0.85;

  const bool tile_was = simgpu::tile_path_enabled();
  const bool wf_was = simgpu::warpfast_path_enabled();
  const bool pool_was = simgpu::pool_enabled();
  auto run_leg = [&](bool tile, bool wf, bool simcheck, bool pool) {
    simgpu::set_tile_path_enabled(tile);
    simgpu::set_warpfast_path_enabled(wf);
    simgpu::set_pool_enabled(pool);
    simgpu::Device dev;
    if (simcheck) dev.enable_sanitizer();
    const auto res = select_batch(dev, values, 1, n, k,
                                  Algo::kBucketApprox, opt);
    Trace t;
    for (const auto& e : dev.events()) {
      if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
        t.kernels.push_back(ke->stats);
      }
    }
    t.model_us = simgpu::CostModel(dev.spec()).total_us(dev.events());
    t.sorted_values = res[0].values;
    std::sort(t.sorted_values.begin(), t.sorted_values.end());
    if (simcheck) {
      EXPECT_TRUE(dev.sanitizer()->snapshot().clean())
          << dev.sanitizer()->snapshot().to_string();
    }
    return t;
  };

  const Trace base = run_leg(false, false, false, true);
  ASSERT_EQ(base.kernels.size(), 2u);  // scan + refine
  for (const bool tile : {false, true}) {
    for (const bool wf : {false, true}) {
      for (const bool simcheck : {false, true}) {
        for (const bool pool : {false, true}) {
          const Trace leg = run_leg(tile, wf, simcheck, pool);
          const std::string what = std::string("tile=") +
                                   (tile ? "1" : "0") + " wf=" +
                                   (wf ? "1" : "0") + " simcheck=" +
                                   (simcheck ? "1" : "0") + " pool=" +
                                   (pool ? "1" : "0");
          ASSERT_EQ(leg.kernels.size(), base.kernels.size()) << what;
          for (std::size_t i = 0; i < base.kernels.size(); ++i) {
            EXPECT_EQ(leg.kernels[i].bytes_read, base.kernels[i].bytes_read)
                << what << " kernel " << i;
            EXPECT_EQ(leg.kernels[i].bytes_written,
                      base.kernels[i].bytes_written)
                << what << " kernel " << i;
            EXPECT_EQ(leg.kernels[i].lane_ops, base.kernels[i].lane_ops)
                << what << " kernel " << i;
            EXPECT_EQ(leg.kernels[i].block_syncs, base.kernels[i].block_syncs)
                << what << " kernel " << i;
          }
          EXPECT_EQ(leg.model_us, base.model_us) << what;
          EXPECT_EQ(leg.sorted_values, base.sorted_values) << what;
        }
      }
    }
  }
  simgpu::set_tile_path_enabled(tile_was);
  simgpu::set_warpfast_path_enabled(wf_was);
  simgpu::set_pool_enabled(pool_was);
}

// --- recall_target validation and routing ---------------------------------

TEST(BucketApproxRouting, RecallTargetValidatedEverywhere) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1024, 5);
  for (const double bad : {0.0, -1.0, 1.01}) {
    SelectOptions opt;
    opt.recall_target = bad;
    EXPECT_THROW(select(dev, values, 16, Algo::kAuto, opt),
                 std::invalid_argument)
        << bad;
    EXPECT_THROW(select_batch(dev, values, 2, 512, 16, Algo::kAuto, opt),
                 std::invalid_argument)
        << bad;
    EXPECT_THROW(plan_select(dev.spec(), 1, 1024, 16, Algo::kAuto, opt),
                 std::invalid_argument)
        << bad;
    WorkloadHints hints;
    hints.recall_target = bad;
    EXPECT_THROW(recommend_algorithm(1024, 16, hints), std::invalid_argument)
        << bad;
  }
  // serve::submit rejects before enqueueing anything.
  serve::ServiceConfig cfg;
  cfg.num_devices = 1;
  serve::TopkService svc(cfg);
  WorkloadHints bad_hints;
  bad_hints.recall_target = 2.0;
  EXPECT_THROW(svc.submit(values, 16, std::nullopt, std::nullopt, bad_hints),
               std::invalid_argument);
}

TEST(BucketApproxRouting, ExactTargetNeverRoutesApproximate) {
  // recall_target = 1.0 (and the default) must resolve to an exact
  // algorithm for every shape the recommender covers.
  for (const std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 18,
                              std::size_t{1} << 22}) {
    for (const std::size_t k : {std::size_t{8}, std::size_t{256}}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{128}}) {
        WorkloadHints hints;
        hints.batch = batch;
        EXPECT_NE(recommend_algorithm(n, k, hints), Algo::kBucketApprox);
        hints.recall_target = 1.0;
        EXPECT_NE(recommend_algorithm(n, k, hints), Algo::kBucketApprox);
      }
    }
  }
}

TEST(BucketApproxRouting, RelaxedTargetWinsTheCostRaceAtLargeN) {
  WorkloadHints hints;
  hints.batch = 1;
  hints.recall_target = 0.9;
  EXPECT_EQ(recommend_algorithm(std::size_t{1} << 22, 256, hints),
            Algo::kBucketApprox);
  // The modeled cost the race saw must actually be lower.
  EXPECT_LT(estimated_batch_cost_us(Algo::kBucketApprox, 1,
                                    std::size_t{1} << 22, 256, 0.9),
            estimated_batch_cost_us(Algo::kAirTopk, 1, std::size_t{1} << 22,
                                    256));
  // Tiny problems stay exact even with a relaxed SLO: the two-launch
  // overhead dwarfs any sweep savings.
  EXPECT_NE(recommend_algorithm(1024, 16, hints), Algo::kBucketApprox);
}

// Default options through the registry must stay exact — verify_topk is the
// exactness oracle.
TEST(BucketApproxRouting, DefaultOptionsAreExact) {
  simgpu::Device dev;
  const std::size_t k = 333;
  std::uint64_t seed = 909;
  for (const auto& dist : standard_distributions()) {
    const auto values = data::generate(dist, 20000, seed++);
    test::expect_correct(dev, values, k, Algo::kBucketApprox);
    // Largest-K rides the registry's negation wrap (verify_topk is
    // smallest-only, so compare against the descending reference directly).
    SelectOptions opt;
    opt.greatest = true;
    const SelectResult r = select(dev, values, k, Algo::kBucketApprox, opt);
    std::vector<float> got = r.values;
    std::sort(got.begin(), got.end(), std::greater<float>());
    const auto want = data::exact_topk_values(values, k, /*greatest=*/true);
    EXPECT_EQ(got, want) << dist.name();
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(values[r.indices[i]], r.values[i]) << dist.name();
    }
  }
}

}  // namespace
}  // namespace topk
