#include "topk/common.hpp"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "simgpu/simgpu.hpp"

namespace topk {
namespace {

TEST(BlockChunk, PartitionsExactlyAndBalanced) {
  for (std::size_t count : {0u, 1u, 7u, 100u, 1000u, 4097u}) {
    for (int parts : {1, 2, 3, 7, 16, 111}) {
      std::size_t covered = 0;
      std::size_t min_len = count + 1, max_len = 0;
      std::size_t expected_begin = 0;
      for (int p = 0; p < parts; ++p) {
        const auto [begin, end] = block_chunk(count, parts, p);
        EXPECT_EQ(begin, expected_begin) << "gap or overlap";
        expected_begin = end;
        covered += end - begin;
        min_len = std::min(min_len, end - begin);
        max_len = std::max(max_len, end - begin);
      }
      EXPECT_EQ(covered, count);
      EXPECT_LE(max_len - min_len, 1u) << "imbalance > 1";
    }
  }
}

TEST(MakeGrid, CoversDeviceWithoutOverdoingIt) {
  const auto spec = simgpu::DeviceSpec::a100();
  // Large single problem: capped at 2x SM count.
  const GridShape big = make_grid(1, 1 << 26, spec);
  EXPECT_EQ(big.blocks_per_problem, 2 * spec.sm_count);
  // Small problem: a single block.
  const GridShape tiny = make_grid(1, 100, spec);
  EXPECT_EQ(tiny.blocks_per_problem, 1);
  // Big batch: per-problem blocks limited so the total stays bounded.
  const GridShape batch = make_grid(100, 1 << 26, spec);
  EXPECT_LE(batch.total_blocks(), 4096);
  EXPECT_GE(batch.blocks_per_problem, 1);
  // Problem-major indexing.
  EXPECT_EQ(batch.problem_of(0), 0u);
  EXPECT_EQ(batch.problem_of(batch.blocks_per_problem), 1u);
  EXPECT_EQ(batch.block_in_problem(batch.blocks_per_problem + 1), 1);
}

TEST(ValidateProblem, RejectsDegenerateInput) {
  EXPECT_THROW(validate_problem(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(validate_problem(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(validate_problem(10, 11, 1), std::invalid_argument);
  EXPECT_THROW(validate_problem(10, 5, 0), std::invalid_argument);
  EXPECT_NO_THROW(validate_problem(10, 10, 1));
}

TEST(AggregatedAppender, AppendsAllItemsWithBatchedAtomics) {
  simgpu::Device dev;
  constexpr std::size_t kItems = 1000;
  auto vals = dev.alloc<float>(kItems);
  auto idx = dev.alloc<std::uint32_t>(kItems);
  auto cursor = dev.alloc_zero<std::uint64_t>(1);
  const auto stats = simgpu::launch(
      dev, {"append", 4, 32}, [=](simgpu::BlockCtx& ctx) {
        AggregatedAppender<float, std::uint64_t> app(vals, idx, 0, cursor, 0,
                                                     kItems, "test");
        const auto [begin, end] =
            block_chunk(kItems, 4, ctx.block_idx());
        for (std::size_t i = begin; i < end; ++i) {
          app.push(ctx, static_cast<float>(i), static_cast<std::uint32_t>(i));
        }
        app.flush(ctx);
      });
  EXPECT_EQ(cursor.data()[0], kItems);
  // One atomic per <=32 staged items, not one per item.
  EXPECT_LE(stats.atomic_ops, kItems / 32 + 8);
  // Every item present exactly once, with value/index still paired.
  std::vector<bool> seen(kItems, false);
  for (std::size_t i = 0; i < kItems; ++i) {
    const auto id = idx.data()[i];
    ASSERT_LT(id, kItems);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
    EXPECT_EQ(vals.data()[i], static_cast<float>(id));
  }
}

TEST(AggregatedAppender, ThrowsOnOverflow) {
  simgpu::Device dev;
  auto vals = dev.alloc<float>(8);
  auto idx = dev.alloc<std::uint32_t>(8);
  auto cursor = dev.alloc_zero<std::uint32_t>(1);
  EXPECT_THROW(
      simgpu::launch(dev, {"overflow", 1, 32},
                     [=](simgpu::BlockCtx& ctx) {
                       AggregatedAppender<float, std::uint32_t> app(
                           vals, idx, 0, cursor, 0, 8, "test");
                       for (int i = 0; i < 9; ++i) {
                         app.push(ctx, 0.0f, 0);
                       }
                       app.flush(ctx);
                     }),
      std::logic_error);
}

TEST(StragglerModel, UnbalancedKernelIsBoundByItsHeaviestBlock) {
  // Two kernels with identical aggregate traffic; one concentrates it all
  // in a single block.  The cost model must charge the imbalanced one more.
  simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  simgpu::CostModel model(spec);

  simgpu::KernelStats balanced;
  balanced.grid_blocks = 216;
  balanced.block_threads = 256;
  balanced.bytes_read = 64u << 20;
  balanced.max_block_bytes = (64u << 20) / 216;

  simgpu::KernelStats skewed = balanced;
  skewed.max_block_bytes = 64u << 20;  // one block does everything

  EXPECT_GT(model.kernel_cost(skewed).duration_us,
            5 * model.kernel_cost(balanced).duration_us);
}

TEST(StragglerModel, RealKernelRecordsMaxBlockTraffic) {
  simgpu::Device dev;
  auto buf = dev.alloc<float>(1024);
  const auto stats =
      simgpu::launch(dev, {"skew", 8, 32}, [=](simgpu::BlockCtx& ctx) {
        if (ctx.block_idx() == 3) {
          for (std::size_t i = 0; i < 1024; ++i) ctx.load(buf, i);
        } else {
          ctx.load(buf, 0);
        }
      });
  EXPECT_EQ(stats.max_block_bytes, 1024 * sizeof(float));
  EXPECT_EQ(stats.bytes_read, (1024 + 7) * sizeof(float));
}

}  // namespace
}  // namespace topk
