#include "core/dr_topk.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

SelectResult run_dr(simgpu::Device& dev, std::span<const float> data,
                    std::size_t k, const DrTopkOptions& opt = {}) {
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(data.size());
  std::copy(data.begin(), data.end(), in.data());
  auto ov = dev.alloc<float>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  dr_topk(dev, in, 1, data.size(), k, ov, oi, opt);
  SelectResult r;
  r.values.assign(ov.data(), ov.data() + k);
  r.indices.assign(oi.data(), oi.data() + k);
  return r;
}

TEST(DrTopk, CorrectAcrossDistributionsAndSizes) {
  simgpu::Device dev;
  std::uint64_t seed = 9000;
  for (const auto& spec : test::standard_distributions()) {
    for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{100, 3},
                               {4096, 64},
                               {100000, 1},
                               {1 << 18, 1000}}) {
      const auto values = data::generate(spec, n, seed++);
      const SelectResult r = run_dr(dev, values, k);
      const std::string err = verify_topk(values, k, r);
      EXPECT_TRUE(err.empty()) << spec.name() << " n=" << n << " k=" << k
                               << ": " << err;
    }
  }
}

TEST(DrTopk, DuplicateDelegatesRemainSound) {
  // Ties at the k-th delegate: the union of selected subranges must still
  // contain a valid top-k multiset.
  simgpu::Device dev;
  std::vector<float> values(10000, 5.0f);
  for (std::size_t i = 0; i < 20; ++i) values[i * 481] = 1.0f;
  const SelectResult r = run_dr(dev, values, 50);
  EXPECT_TRUE(verify_topk(values, 50, r).empty());
}

TEST(DrTopk, TopKClusteredInOneSubrange) {
  simgpu::Device dev;
  std::vector<float> values(1 << 16, 100.0f);
  DrTopkOptions opt;
  opt.subrange = 256;
  // All 64 smallest values sit inside one subrange.
  for (std::size_t i = 0; i < 64; ++i) {
    values[3 * 256 + i] = static_cast<float>(i);
  }
  const SelectResult r = run_dr(dev, values, 64, opt);
  EXPECT_TRUE(verify_topk(values, 64, r).empty());
}

TEST(DrTopk, ExplicitSubrangeSizes) {
  simgpu::Device dev;
  const auto values = data::normal_values(1 << 15, 11);
  for (std::size_t g : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                        std::size_t{500}}) {
    DrTopkOptions opt;
    opt.subrange = g;
    const SelectResult r = run_dr(dev, values, 32, opt);
    EXPECT_TRUE(verify_topk(values, 32, r).empty()) << "g=" << g;
  }
}

TEST(DrTopk, WorksWithOtherBases) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 16, 13);
  for (Algo base : {Algo::kAirTopk, Algo::kGridSelect, Algo::kRadixSelect,
                    Algo::kSort, Algo::kBitonicTopk}) {
    DrTopkOptions opt;
    opt.base = base;
    const std::size_t k = 100;
    const SelectResult r = run_dr(dev, values, k, opt);
    EXPECT_TRUE(verify_topk(values, k, r).empty()) << algo_name(base);
  }
}

TEST(DrTopk, ReducesDeviceTrafficVersusDirectBase) {
  // The hybrid's whole point: the base selections run on n/g delegates and
  // k*g candidates instead of n elements, so total device-memory traffic
  // drops well below the direct base's multi-pass traffic.  (At emulator
  // scales total *time* is still dominated by the host-managed base's fixed
  // round trips — the paper's SC'21 wins appear at N >= 2^28, see
  // bench/hybrid_dr_topk.)
  simgpu::Device dev;
  const std::size_t n = 1 << 18, k = 32;
  const auto values = data::uniform_values(n, 17);
  const auto traffic = [&](bool hybrid) {
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(n);
    std::copy(values.begin(), values.end(), in.data());
    auto ov = dev.alloc<float>(k);
    auto oi = dev.alloc<std::uint32_t>(k);
    dev.clear_events();
    if (hybrid) {
      DrTopkOptions opt;
      opt.base = Algo::kRadixSelect;
      dr_topk(dev, in, 1, n, k, ov, oi, opt);
    } else {
      select_device(dev, in, 1, n, k, ov, oi, Algo::kRadixSelect);
    }
    std::uint64_t bytes = 0;
    for (const auto& e : dev.events()) {
      if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
        bytes += ke->stats.bytes_total();
      }
    }
    return bytes;
  };
  EXPECT_LT(traffic(true), traffic(false))
      << "Dr. Top-K must reduce device traffic below the direct base";
}

TEST(DrTopk, RejectsBadConfigurations) {
  simgpu::Device dev;
  auto in = dev.alloc<float>(1000);
  auto ov = dev.alloc<float>(100);
  auto oi = dev.alloc<std::uint32_t>(100);
  DrTopkOptions opt;
  opt.subrange = 512;  // only 2 subranges < k
  EXPECT_THROW(dr_topk(dev, in, 1, 1000, 100, ov, oi, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk
