// Tests for the RAFT-parity extension features: half-precision keys,
// input-index pass-through (chained selections), and sorted output.

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/air_topk.hpp"
#include "topk/grid_select.hpp"
#include "topk/half.hpp"

namespace topk {
namespace {

TEST(Half, RoundTripsRepresentableValues) {
  for (float f : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 65504.0f, -65504.0f,
                  6.103515625e-05f /* smallest normal */,
                  5.9604644775390625e-08f /* smallest subnormal */}) {
    const half h(f);
    EXPECT_EQ(static_cast<float>(h), f) << f;
  }
}

TEST(Half, ConversionRoundsToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half; ties go
  // to even (1.0).
  EXPECT_EQ(static_cast<float>(half(1.0f + 0.00048828125f)), 1.0f);
  // Slightly above halfway rounds up.
  EXPECT_EQ(static_cast<float>(half(1.0f + 0.0005f)), 1.0009765625f);
}

TEST(Half, OverflowAndInfinity) {
  EXPECT_TRUE(std::isinf(static_cast<float>(half(1e6f))));
  EXPECT_TRUE(std::isinf(static_cast<float>(half(-1e6f))));
  EXPECT_TRUE(std::isnan(static_cast<float>(
      half(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Half, RadixTraitsAreMonotone) {
  std::mt19937 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const half a = half::from_bits(static_cast<std::uint16_t>(rng()));
    const half b = half::from_bits(static_cast<std::uint16_t>(rng()));
    const float fa = static_cast<float>(a), fb = static_cast<float>(b);
    if (std::isnan(fa) || std::isnan(fb)) continue;
    if (fa == fb) continue;  // +0/-0 share a float value, not an order
    EXPECT_EQ(fa < fb,
              RadixTraits<half>::to_radix(a) < RadixTraits<half>::to_radix(b));
  }
}

TEST(Half, AirTopkSelectsSmallestHalves) {
  simgpu::Device dev;
  std::mt19937 rng(2);
  std::normal_distribution<float> dist(0.0f, 100.0f);
  const std::size_t n = 30000, k = 200;
  std::vector<half> data(n);
  for (auto& h : data) h = half(dist(rng));

  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<half>(n);
  std::copy(data.begin(), data.end(), in.data());
  auto ov = dev.alloc<half>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  air_topk(dev, in, 1, n, k, ov, oi);

  std::vector<float> got(k), want;
  for (std::size_t i = 0; i < k; ++i) got[i] = static_cast<float>(ov.data()[i]);
  for (const half& h : data) want.push_back(static_cast<float>(h));
  std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                   want.end());
  want.resize(k);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(static_cast<float>(data[oi.data()[i]]),
              static_cast<float>(ov.data()[i]));
  }
}

TEST(Half, TwoRadixPassesSuffice) {
  // 16-bit keys with 11-bit digits: ceil(16/11) = 2 iteration-fused kernels.
  simgpu::Device dev;
  std::vector<half> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = half(static_cast<float>(i % 97));
  }
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<half>(data.size());
  std::copy(data.begin(), data.end(), in.data());
  auto ov = dev.alloc<half>(10);
  auto oi = dev.alloc<std::uint32_t>(10);
  dev.clear_events();
  air_topk(dev, in, 1, data.size(), 10, ov, oi);
  std::size_t fused = 0;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      fused += ke->stats.name.starts_with("iteration_fused_kernel") ? 1u : 0u;
    }
  }
  EXPECT_EQ(fused, 2u);
}

TEST(InputIndices, ChainedSelectionKeepsOriginalIds) {
  // The ANN two-stage pattern: coarse top-m with original ids, then refined
  // top-k over the survivors, still reporting ids into the original array.
  simgpu::Device dev;
  const std::size_t n = 50000, m = 1024, k = 32;
  const auto values = data::normal_values(n, 11);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(n);
  std::copy(values.begin(), values.end(), in.data());
  auto coarse_v = dev.alloc<float>(m);
  auto coarse_i = dev.alloc<std::uint32_t>(m);
  air_topk(dev, in, 1, n, m, coarse_v, coarse_i);

  auto fine_v = dev.alloc<float>(k);
  auto fine_i = dev.alloc<std::uint32_t>(k);
  AirTopkOptions opt;
  opt.in_idx = coarse_i;
  air_topk(dev, coarse_v, 1, m, k, fine_v, fine_i, opt);

  SelectResult r;
  r.values.assign(fine_v.data(), fine_v.data() + k);
  r.indices.assign(fine_i.data(), fine_i.data() + k);
  // The chained result must be a valid top-k of the ORIGINAL array.
  EXPECT_TRUE(verify_topk(values, k, r).empty());
}

TEST(InputIndices, GridSelectHonorsExternalIds) {
  simgpu::Device dev;
  const std::size_t n = 8192, k = 16;
  const auto values = data::uniform_values(n, 13);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(n);
  std::copy(values.begin(), values.end(), in.data());
  auto ids = dev.alloc<std::uint32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.data()[i] = static_cast<std::uint32_t>(7 * i + 3);  // external ids
  }
  auto ov = dev.alloc<float>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  GridSelectOptions opt;
  opt.in_idx = ids;
  grid_select(dev, in, 1, n, k, ov, oi, opt);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t ext = oi.data()[i];
    EXPECT_EQ((ext - 3) % 7, 0u);
    EXPECT_EQ(values[(ext - 3) / 7], ov.data()[i]);
  }
}

TEST(NativeGreatest, AirComplementedKeysSelectLargest) {
  simgpu::Device dev;
  const auto values = data::normal_values(40000, 21);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(values.size());
  std::copy(values.begin(), values.end(), in.data());
  const std::size_t k = 333;
  auto ov = dev.alloc<float>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  AirTopkOptions opt;
  opt.greatest = true;
  air_topk(dev, in, 1, values.size(), k, ov, oi, opt);

  std::vector<float> got(ov.data(), ov.data() + k);
  std::vector<float> want(values.begin(), values.end());
  std::sort(want.begin(), want.end(), std::greater<>());
  want.resize(k);
  std::sort(got.begin(), got.end(), std::greater<>());
  EXPECT_EQ(got, want);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(values[oi.data()[i]], ov.data()[i]);
  }
}

TEST(NativeGreatest, CoreRouteDoesNotMutateInput) {
  // AIR's native largest-K must not need the negate-copy fallback: the
  // device input stays byte-identical.
  simgpu::Device dev;
  const auto values = data::uniform_values(5000, 22);
  SelectOptions opt;
  opt.greatest = true;
  const SelectResult air = select(dev, values, 25, Algo::kAirTopk, opt);
  const SelectResult sort_based = select(dev, values, 25, Algo::kSort, opt);
  auto sorted = [](std::vector<float> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(air.values), sorted(sort_based.values));
}

TEST(SortedOutput, ResultsComeBackBestFirst) {
  simgpu::Device dev;
  const auto values = data::normal_values(20000, 17);
  SelectOptions opt;
  opt.sorted = true;
  const SelectResult r = select(dev, values, 50, Algo::kAirTopk, opt);
  EXPECT_TRUE(verify_topk(values, 50, r).empty());
  EXPECT_TRUE(std::is_sorted(r.values.begin(), r.values.end()));

  opt.greatest = true;
  const SelectResult g = select(dev, values, 50, Algo::kAirTopk, opt);
  EXPECT_TRUE(std::is_sorted(g.values.begin(), g.values.end(),
                             std::greater<>()));
  // Index fidelity survives the sort.
  for (std::size_t i = 0; i < g.values.size(); ++i) {
    EXPECT_EQ(values[g.indices[i]], g.values[i]);
  }
}

}  // namespace
}  // namespace topk
