// The algorithm implementations are templates over the key type; the paper
// evaluates float32, but the radix traits support uint32/int32/double and
// the partial sorts anything with operator<.  These tests pin that down.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/air_topk.hpp"
#include "topk/bitonic_topk.hpp"
#include "topk/grid_select.hpp"
#include "topk/radix_select.hpp"
#include "topk/radix_traits.hpp"
#include "topk/sort_topk.hpp"
#include "topk/warp_select.hpp"

namespace topk {
namespace {

template <typename T>
std::vector<T> reference_smallest(const std::vector<T>& data, std::size_t k) {
  std::vector<T> want(data);
  std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                   want.end());
  want.resize(k);
  std::sort(want.begin(), want.end());
  return want;
}

template <typename T, typename Fn>
void check_algo(const std::vector<T>& data, std::size_t k, Fn&& run,
                const char* what) {
  simgpu::Device dev;
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<T>(data.size());
  std::copy(data.begin(), data.end(), in.data());
  auto ov = dev.alloc<T>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  run(dev, in, data.size(), k, ov, oi);
  std::vector<T> got(ov.data(), ov.data() + k);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, reference_smallest(data, k)) << what;
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(data[oi.data()[i]], ov.data()[i]) << what << " index " << i;
  }
}

template <typename T>
std::vector<T> random_ints(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<T> out(n);
  for (auto& v : out) v = static_cast<T>(rng());
  return out;
}

TEST(RadixTraits, MonotoneForAllSupportedTypes) {
  // to_radix must preserve order; from_radix must invert it.
  std::mt19937_64 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float a = std::bit_cast<float>(static_cast<std::uint32_t>(rng()));
    const float b = std::bit_cast<float>(static_cast<std::uint32_t>(rng()));
    if (std::isnan(a) || std::isnan(b)) continue;
    EXPECT_EQ(a < b, RadixTraits<float>::to_radix(a) <
                         RadixTraits<float>::to_radix(b));
    EXPECT_EQ(a, RadixTraits<float>::from_radix(RadixTraits<float>::to_radix(a)));
  }
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::int32_t>(rng());
    const auto b = static_cast<std::int32_t>(rng());
    EXPECT_EQ(a < b, RadixTraits<std::int32_t>::to_radix(a) <
                         RadixTraits<std::int32_t>::to_radix(b));
    EXPECT_EQ(a, RadixTraits<std::int32_t>::from_radix(
                     RadixTraits<std::int32_t>::to_radix(a)));
  }
  for (int i = 0; i < 2000; ++i) {
    const double a = static_cast<double>(static_cast<std::int64_t>(rng())) *
                     1e-3;
    const double b = static_cast<double>(static_cast<std::int64_t>(rng())) *
                     1e-3;
    EXPECT_EQ(a < b, RadixTraits<double>::to_radix(a) <
                         RadixTraits<double>::to_radix(b));
    EXPECT_EQ(a, RadixTraits<double>::from_radix(
                     RadixTraits<double>::to_radix(a)));
  }
}

TEST(GenericKeys, AirTopkOnSignedInts) {
  const auto data = random_ints<std::int32_t>(50000, 2);
  check_algo<std::int32_t>(data, 321,
                           [](auto& dev, auto in, auto n, auto k, auto ov,
                              auto oi) { air_topk(dev, in, 1, n, k, ov, oi); },
                           "air int32");
}

TEST(GenericKeys, AirTopkOnDoubles) {
  // 64-bit keys: ceil(64/11) = 6 radix passes.
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist(0.0, 1e6);
  std::vector<double> data(20000);
  for (auto& v : data) v = dist(rng);
  check_algo<double>(data, 100,
                     [](auto& dev, auto in, auto n, auto k, auto ov, auto oi) {
                       air_topk(dev, in, 1, n, k, ov, oi);
                     },
                     "air double");
}

TEST(GenericKeys, RadixSelectOnUnsignedInts) {
  const auto data = data::uniform_u32(40000, 4);
  check_algo<std::uint32_t>(
      data, 99,
      [](auto& dev, auto in, auto n, auto k, auto ov, auto oi) {
        radix_select(dev, in, 1, n, k, ov, oi);
      },
      "radix_select u32");
}

TEST(GenericKeys, SortOnUnsignedInts) {
  const auto data = data::uniform_u32(30000, 5);
  check_algo<std::uint32_t>(
      data, 1000,
      [](auto& dev, auto in, auto n, auto k, auto ov, auto oi) {
        sort_topk(dev, in, 1, n, k, ov, oi);
      },
      "sort u32");
}

TEST(GenericKeys, GridSelectOnSignedInts) {
  const auto data = random_ints<std::int32_t>(60000, 6);
  check_algo<std::int32_t>(
      data, 64,
      [](auto& dev, auto in, auto n, auto k, auto ov, auto oi) {
        grid_select(dev, in, 1, n, k, ov, oi);
      },
      "grid_select int32");
}

TEST(GenericKeys, WarpSelectOnDoubles) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> dist(0.0, 10.0);
  std::vector<double> data(8000);
  for (auto& v : data) v = dist(rng);
  check_algo<double>(data, 40,
                     [](auto& dev, auto in, auto n, auto k, auto ov, auto oi) {
                       warp_select(dev, in, 1, n, k, ov, oi);
                     },
                     "warp_select double");
}

TEST(GenericKeys, BitonicTopkOnUnsignedInts) {
  const auto data = data::uniform_u32(20000, 8);
  check_algo<std::uint32_t>(
      data, 128,
      [](auto& dev, auto in, auto n, auto k, auto ov, auto oi) {
        bitonic_topk(dev, in, 1, n, k, ov, oi);
      },
      "bitonic u32");
}

}  // namespace
}  // namespace topk
