// Cross-module integration tests: end-to-end behaviours that span the
// algorithm layer, the core API and the cost model together.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/air_topk.hpp"
#include "topk/grid_select.hpp"

namespace topk {
namespace {

TEST(Integration, Batch100SmokeAcrossKeyAlgorithms) {
  // The paper's online-serving scenario: 100 problems solved at once.
  simgpu::Device dev;
  const std::size_t batch = 100, n = 2048, k = 32;
  const auto values = data::uniform_values(batch * n, 100);
  for (Algo algo : {Algo::kAirTopk, Algo::kGridSelect, Algo::kBlockSelect}) {
    const auto results = select_batch(dev, values, batch, n, k, algo);
    for (std::size_t b = 0; b < batch; ++b) {
      std::span<const float> slice(values.data() + b * n, n);
      ASSERT_TRUE(verify_topk(slice, k, results[b]).empty())
          << algo_name(algo) << " problem " << b;
    }
  }
}

TEST(Integration, GridSelectSingleBlockPathSkipsMergeKernel) {
  simgpu::Device dev;
  const auto small = data::uniform_values(4096, 5);
  dev.clear_events();
  (void)select(dev, small, 16, Algo::kGridSelect);
  std::size_t kernels = 0;
  bool merge_seen = false;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      ++kernels;
      merge_seen |= ke->stats.name == "GridSelect_merge";
    }
  }
  EXPECT_EQ(kernels, 1u);
  EXPECT_FALSE(merge_seen);

  const auto big = data::uniform_values(1 << 20, 5);
  dev.clear_events();
  (void)select(dev, big, 16, Algo::kGridSelect);
  merge_seen = false;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      merge_seen |= ke->stats.name == "GridSelect_merge";
    }
  }
  EXPECT_TRUE(merge_seen);
}

TEST(Integration, AirAlphaExtremesStayCorrect) {
  simgpu::Device dev;
  const auto values = data::normal_values(1 << 16, 7);
  for (int alpha : {4, 64, 1 << 16, 1 << 20}) {
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(values.size());
    std::copy(values.begin(), values.end(), in.data());
    auto ov = dev.alloc<float>(500);
    auto oi = dev.alloc<std::uint32_t>(500);
    AirTopkOptions opt;
    opt.alpha = alpha;
    air_topk(dev, in, 1, values.size(), 500, ov, oi, opt);
    SelectResult r;
    r.values.assign(ov.data(), ov.data() + 500);
    r.indices.assign(oi.data(), oi.data() + 500);
    EXPECT_TRUE(verify_topk(values, 500, r).empty()) << "alpha=" << alpha;
  }
}

TEST(Integration, AirDigitWidthsAllCorrectWithExpectedPassCounts) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 15, 9);
  {
    // 2^16-counter histogram cannot fit in shared memory (§3.1 constraint).
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(values.size());
    auto ov = dev.alloc<float>(100);
    auto oi = dev.alloc<std::uint32_t>(100);
    AirTopkOptions opt;
    opt.digit_bits = 16;
    EXPECT_THROW(air_topk(dev, in, 1, values.size(), 100, ov, oi, opt),
                 std::invalid_argument);
  }
  for (const auto& [bits, passes] :
       {std::pair<int, std::size_t>{4, 8}, {8, 4}, {11, 3}, {12, 3}}) {
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(values.size());
    std::copy(values.begin(), values.end(), in.data());
    auto ov = dev.alloc<float>(100);
    auto oi = dev.alloc<std::uint32_t>(100);
    dev.clear_events();
    AirTopkOptions opt;
    opt.digit_bits = bits;
    air_topk(dev, in, 1, values.size(), 100, ov, oi, opt);
    std::size_t fused = 0;
    for (const auto& e : dev.events()) {
      if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
        fused += ke->stats.name.starts_with("iteration_fused") ? 1u : 0u;
      }
    }
    EXPECT_EQ(fused, passes) << "digit_bits=" << bits;
    SelectResult r;
    r.values.assign(ov.data(), ov.data() + 100);
    r.indices.assign(oi.data(), oi.data() + 100);
    EXPECT_TRUE(verify_topk(values, 100, r).empty()) << "bits=" << bits;
  }
}

TEST(Integration, RadixSelectKernelCountMatchesHostManagedLoop) {
  // Per pass: memset + histogram + filter, plus the final remainder copy.
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 16, 11);
  dev.clear_events();
  (void)select(dev, values, 100, Algo::kRadixSelect);
  std::size_t kernels = 0, memcpys = 0;
  for (const auto& e : dev.events()) {
    kernels += std::holds_alternative<simgpu::KernelEvent>(e) ? 1u : 0u;
    memcpys += std::holds_alternative<simgpu::MemcpyEvent>(e) ? 1u : 0u;
  }
  EXPECT_GE(kernels, 4u);
  EXPECT_LE(kernels, 13u);  // at most 4 passes x 3 kernels + remainder copy
  EXPECT_GE(memcpys, 1u);   // one histogram copy per executed pass
}

TEST(Integration, ModeledTimesOrderDevicesEndToEnd) {
  const auto values = data::uniform_values(1 << 20, 13);
  const auto modeled = [&](const simgpu::DeviceSpec& spec) {
    simgpu::Device dev(spec);
    dev.clear_events();
    (void)select(dev, values, 1024, Algo::kAirTopk);
    return simgpu::CostModel(spec).total_us(dev.events());
  };
  const double h100 = modeled(simgpu::DeviceSpec::h100());
  const double a100 = modeled(simgpu::DeviceSpec::a100());
  const double a10 = modeled(simgpu::DeviceSpec::a10());
  EXPECT_LT(h100, a100);
  EXPECT_LT(a100, a10);
}

TEST(Integration, WorkspaceIsFullyReleasedAfterEveryAlgorithm) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 16, 15);
  const std::size_t before = dev.live_bytes();
  for (Algo algo : all_algorithms()) {
    const std::size_t k = std::min<std::size_t>(64, max_k(algo, values.size()));
    (void)select(dev, values, k, algo);
    EXPECT_EQ(dev.live_bytes(), before) << algo_name(algo);
  }
}

TEST(Integration, RepeatedRunsDoNotGrowDeviceMemory) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 16, 16);
  (void)select(dev, values, 256, Algo::kAirTopk);
  const std::size_t peak_after_one = dev.peak_live_bytes();
  for (int i = 0; i < 10; ++i) {
    (void)select(dev, values, 256, Algo::kAirTopk);
  }
  EXPECT_EQ(dev.peak_live_bytes(), peak_after_one)
      << "benchmark loops must reuse the arena";
}

}  // namespace
}  // namespace topk
