// Carrier-codec correctness, exhaustively: both 16-bit float formats have
// only 2^16 storage patterns, so the radix round trip and the monotonicity
// of the ordinal encoding are proved over EVERY pattern, not a sample.  The
// ordinal order is the total key order the selection kernels rely on —
// -NaN < -inf < negatives < -0 < +0 < positives < +inf < +NaN — and the
// f32-carrier embedding (ordinal cast to float) must be exact and order-
// preserving, since f16/bf16 keys execute on float kernels in that form.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "topk/key_codec.hpp"

namespace topk {
namespace {

/// Signed rank of a 16-bit pattern under the documented total order,
/// computed independently of RadixTraits from the sign-magnitude storage:
/// negative patterns rank below all non-negative ones, more-negative lower.
template <typename H>
long long storage_rank(std::uint16_t bits) {
  const long long mag = bits & 0x7FFF;
  return (bits & 0x8000) ? -mag - 1 : mag;
}

template <typename H>
void exhaustive_roundtrip_and_monotonicity(const char* what) {
  using Traits = RadixTraits<H>;
  for (std::uint32_t b = 0; b <= 0xFFFF; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const H h = H::from_bits(bits);
    const std::uint16_t ordinal = Traits::to_radix(h);
    // Round trip is the identity on storage bits — NaN payloads included.
    ASSERT_EQ(Traits::from_radix(ordinal).bits(), bits)
        << what << " bits=0x" << std::hex << b;
    // The f32 carrier embedding is exact: ordinals live in [0, 65536).
    const float carrier = static_cast<float>(ordinal);
    ASSERT_EQ(static_cast<std::uint16_t>(carrier), ordinal)
        << what << " bits=0x" << std::hex << b;
    // The ordinal is exactly the storage rank shifted into [0, 65536) — an
    // affine bijection, which proves strict monotonicity over every pair of
    // patterns at once (distinct ordinals, order preserved, no ties).
    ASSERT_EQ(static_cast<long long>(ordinal), storage_rank<H>(bits) + 0x8000)
        << what << " bits=0x" << std::hex << b;
  }
}

TEST(KeyCodec, HalfExhaustiveRoundTripAndMonotonicity) {
  exhaustive_roundtrip_and_monotonicity<half>("f16");
}

TEST(KeyCodec, Bf16ExhaustiveRoundTripAndMonotonicity) {
  exhaustive_roundtrip_and_monotonicity<bf16>("bf16");
}

/// The special values the order pins down, checked by name rather than by
/// pattern sweep: -NaN < -inf < -1 < -0 < +0 < +1 < +inf < +NaN.
template <typename H>
void special_value_order(const char* what) {
  using Traits = RadixTraits<H>;
  const H neg_nan = H::from_bits(static_cast<std::uint16_t>(
      H(std::numeric_limits<float>::quiet_NaN()).bits() | 0x8000u));
  const H pos_nan = H(std::numeric_limits<float>::quiet_NaN());
  const std::vector<H> ascending = {
      neg_nan,
      H(-std::numeric_limits<float>::infinity()),
      H(-1.0f),
      H::from_bits(0x8000),  // -0
      H::from_bits(0x0000),  // +0
      H(1.0f),
      H(std::numeric_limits<float>::infinity()),
      pos_nan,
  };
  ASSERT_TRUE(std::isnan(static_cast<float>(neg_nan))) << what;
  ASSERT_TRUE(std::isnan(static_cast<float>(pos_nan))) << what;
  for (std::size_t i = 1; i < ascending.size(); ++i) {
    EXPECT_LT(Traits::to_radix(ascending[i - 1]),
              Traits::to_radix(ascending[i]))
        << what << " position " << i;
  }
}

TEST(KeyCodec, HalfSpecialValuesOrdered) { special_value_order<half>("f16"); }
TEST(KeyCodec, Bf16SpecialValuesOrdered) { special_value_order<bf16>("bf16"); }

TEST(KeyCodec, HalfConversionRoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; RNE picks
  // the even mantissa (1.0).  Nudging up must round to 1 + 2^-10.
  EXPECT_EQ(half(1.0f + 0x1p-11f).bits(), half(1.0f).bits());
  EXPECT_EQ(half(1.0f + 0x1p-11f + 0x1p-20f).bits(),
            half(1.0f + 0x1p-10f).bits());
  // Overflow saturates to infinity, preserving sign.
  EXPECT_EQ(half(1e6f).bits(), half(std::numeric_limits<float>::infinity()).bits());
  EXPECT_EQ(half(-1e6f).bits(),
            half(-std::numeric_limits<float>::infinity()).bits());
}

TEST(KeyCodec, Bf16NaNNeverRoundsToInf) {
  // A NaN whose payload lives entirely in the truncated low 16 bits would
  // collapse to an inf pattern without the forced quiet bit.
  const float sneaky = std::bit_cast<float>(0x7F800001u);
  ASSERT_TRUE(std::isnan(sneaky));
  const bf16 b(sneaky);
  EXPECT_TRUE(std::isnan(static_cast<float>(b)));
  EXPECT_EQ(b.bits() & 0x7FFFu, 0x7FC0u);
}

TEST(KeyCodec, IntegerOrdinalsPreserveOrder) {
  const std::vector<std::int32_t> ascending = {
      std::numeric_limits<std::int32_t>::min(), -2, -1, 0, 1, 2,
      std::numeric_limits<std::int32_t>::max()};
  for (std::size_t i = 1; i < ascending.size(); ++i) {
    EXPECT_LT(codec::encode_i32(ascending[i - 1]),
              codec::encode_i32(ascending[i]));
    EXPECT_EQ(codec::decode_i32(codec::encode_i32(ascending[i])),
              ascending[i]);
  }
  EXPECT_EQ(codec::encode_u32(0x12345678u), 0x12345678u);
}

TEST(KeyCodec, BulkEncodeMatchesScalarAndRejectsWrongCarrier) {
  const std::vector<half> hs = {half(0.5f), half(-2.0f), half(0.0f)};
  std::vector<float> carrier(hs.size());
  codec::encode_keys_f32(KeyView::of(std::span<const half>(hs)),
                         carrier.data());
  for (std::size_t i = 0; i < hs.size(); ++i) {
    EXPECT_EQ(carrier[i], codec::encode_f16(hs[i]));
  }
  const std::vector<std::int32_t> is = {-5, 0, 7};
  std::vector<std::uint32_t> ucarrier(is.size());
  codec::encode_keys_u32(KeyView::of(std::span<const std::int32_t>(is)),
                         ucarrier.data());
  for (std::size_t i = 0; i < is.size(); ++i) {
    EXPECT_EQ(ucarrier[i], codec::encode_i32(is[i]));
  }
  EXPECT_THROW(codec::encode_keys_u32(
                   KeyView::of(std::span<const half>(hs)), ucarrier.data()),
               std::invalid_argument);
  EXPECT_THROW(codec::encode_keys_f32(
                   KeyView::of(std::span<const std::int32_t>(is)),
                   carrier.data()),
               std::invalid_argument);
}

TEST(KeyCodec, PayloadWideningAndAccess) {
  const std::vector<std::uint32_t> p32 = {1, 2, 3};
  const std::vector<std::uint64_t> p64 = {10, 1ull << 40};
  const PayloadView v32 = PayloadView::of(std::span<const std::uint32_t>(p32));
  const PayloadView v64 = PayloadView::of(std::span<const std::uint64_t>(p64));
  EXPECT_EQ(codec::payload_at(v32, 2), 3u);
  EXPECT_EQ(codec::payload_at(v64, 1), 1ull << 40);
  EXPECT_EQ(codec::widen_payload(v32),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(codec::widen_payload(v64), p64);
  EXPECT_FALSE(PayloadView{}.present());
  EXPECT_TRUE(v32.present());
}

TEST(KeyCodec, KeyTypeNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumKeyTypes; ++i) {
    const auto t = static_cast<KeyType>(i);
    EXPECT_EQ(parse_key_type(key_type_name(t)), t);
  }
  EXPECT_FALSE(parse_key_type("f64").has_value());
  EXPECT_TRUE(key_type_is_integer(KeyType::kI32));
  EXPECT_TRUE(key_type_is_integer(KeyType::kU32));
  EXPECT_FALSE(key_type_is_integer(KeyType::kBF16));
}

TEST(KeyCodec, DtypeMasksMatchCarrierSupport) {
  // Every registry algorithm serves the float family; u32-carrier coverage
  // is exactly the rows that declare an integer mask bit.
  for (Algo a : all_algorithms()) {
    EXPECT_TRUE(algo_supports_dtype(a, KeyType::kF32)) << algo_name(a);
    EXPECT_TRUE(algo_supports_dtype(a, KeyType::kF16)) << algo_name(a);
    EXPECT_TRUE(algo_supports_dtype(a, KeyType::kBF16)) << algo_name(a);
  }
  EXPECT_TRUE(algo_supports_dtype(Algo::kRadixSelect, KeyType::kI32));
  EXPECT_TRUE(algo_supports_dtype(Algo::kStreamRadix, KeyType::kU32));
  EXPECT_FALSE(algo_supports_dtype(Algo::kQuickSelect, KeyType::kI32));
  EXPECT_FALSE(algo_supports_dtype(Algo::kBucketApprox, KeyType::kU32));
  EXPECT_FALSE(algo_supports_dtype(Algo::kFusedWarpRowwise, KeyType::kI32));
}

}  // namespace
}  // namespace topk
