// Key-value selection end to end: typed select/select_batch with payloads on
// tie- and duplicate-heavy inputs in both selection orders, checked against a
// host reference computed in the key's ordinal domain (the only domain where
// "same multiset" is well-defined for NaN-bearing halves and two's-complement
// ints alike); plus the fused row-wise family, the sharded coordinator's
// typed gather-and-merge, and the serving path's typed submit.

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "serve/service.hpp"
#include "shard/shard.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/key_codec.hpp"

namespace topk {
namespace {

/// Ordinal of a key's storage bits: a 64-bit monotone rank usable for every
/// KeyType (16-bit ordinals zero-extend; i32 flips the sign bit).
std::uint64_t ordinal(KeyType t, std::uint32_t storage_bits) {
  switch (t) {
    case KeyType::kF32:
      return RadixTraits<float>::to_radix(std::bit_cast<float>(storage_bits));
    case KeyType::kF16:
      return RadixTraits<half>::to_radix(
          half::from_bits(static_cast<std::uint16_t>(storage_bits)));
    case KeyType::kBF16:
      return RadixTraits<bf16>::to_radix(
          bf16::from_bits(static_cast<std::uint16_t>(storage_bits)));
    case KeyType::kI32:
      return RadixTraits<std::int32_t>::to_radix(
          std::bit_cast<std::int32_t>(storage_bits));
    case KeyType::kU32:
      return storage_bits;
  }
  return 0;
}

/// A typed workload with heavy ties: keys drawn from few distinct values,
/// stored per dtype, with per-key storage bits kept for verification.
struct TypedData {
  KeyType dtype;
  std::vector<half> f16;
  std::vector<bf16> b16;
  std::vector<float> f32;
  std::vector<std::int32_t> i32;
  std::vector<std::uint32_t> u32;
  std::vector<std::uint32_t> bits;  // storage pattern per key

  [[nodiscard]] KeyView view() const {
    switch (dtype) {
      case KeyType::kF32:
        return KeyView::of(std::span<const float>(f32));
      case KeyType::kF16:
        return KeyView::of(std::span<const half>(f16));
      case KeyType::kBF16:
        return KeyView::of(std::span<const bf16>(b16));
      case KeyType::kI32:
        return KeyView::of(std::span<const std::int32_t>(i32));
      case KeyType::kU32:
        return KeyView::of(std::span<const std::uint32_t>(u32));
    }
    return {};
  }
};

TypedData make_tied(KeyType dtype, std::size_t total, std::uint64_t seed,
                    std::size_t distinct = 11) {
  TypedData d;
  d.dtype = dtype;
  d.bits.resize(total);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < total; ++i) {
    // Values in [-distinct/2, distinct/2): exact in every dtype, and with
    // total >> distinct every value repeats ~total/distinct times, so the
    // k-th boundary is always claimed by ties.
    const float v = static_cast<float>(static_cast<long long>(
                        rng() % distinct) -
                    static_cast<long long>(distinct / 2));
    switch (dtype) {
      case KeyType::kF32:
        d.f32.push_back(v);
        d.bits[i] = std::bit_cast<std::uint32_t>(v);
        break;
      case KeyType::kF16:
        d.f16.push_back(half(v));
        d.bits[i] = d.f16.back().bits();
        break;
      case KeyType::kBF16:
        d.b16.push_back(bf16(v));
        d.bits[i] = d.b16.back().bits();
        break;
      case KeyType::kI32:
        d.i32.push_back(static_cast<std::int32_t>(v));
        d.bits[i] = std::bit_cast<std::uint32_t>(d.i32.back());
        break;
      case KeyType::kU32:
        d.u32.push_back(static_cast<std::uint32_t>(
            static_cast<std::int64_t>(v) + 1000));
        d.bits[i] = d.u32.back();
        break;
    }
  }
  return d;
}

std::uint32_t result_bits(const SelectResult& r, std::size_t i) {
  return r.dtype == KeyType::kF32 ? std::bit_cast<std::uint32_t>(r.values[i])
                                  : r.values_bits[i];
}

/// Full per-row check: indices valid and distinct, reported bits faithful to
/// the stored key, payload gathered from the winning slot, and the winning
/// ordinal multiset equal to the host reference under the requested order.
void verify_typed_row(const TypedData& d, std::size_t row_base, std::size_t n,
                      std::size_t k, bool greatest, const SelectResult& r,
                      const std::vector<std::uint64_t>* payload,
                      const std::string& what) {
  ASSERT_EQ(r.indices.size(), k) << what;
  std::vector<bool> seen(n, false);
  std::vector<std::uint64_t> got(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t idx = r.indices[i];
    ASSERT_LT(idx, n) << what;
    ASSERT_FALSE(seen[idx]) << what << ": duplicate index " << idx;
    seen[idx] = true;
    ASSERT_EQ(result_bits(r, i), d.bits[row_base + idx])
        << what << " position " << i;
    got[i] = ordinal(d.dtype, d.bits[row_base + idx]);
    if (payload) {
      ASSERT_EQ(r.payload[i], (*payload)[row_base + idx])
          << what << " payload at position " << i;
    }
  }
  std::vector<std::uint64_t> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = ordinal(d.dtype, d.bits[row_base + i]);
  }
  if (greatest) {
    std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                     want.end(), std::greater<>());
  } else {
    std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                     want.end());
  }
  want.resize(k);
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, want) << what << ": winning ordinal multiset differs";
}

const KeyType kAllTypes[] = {KeyType::kF32, KeyType::kF16, KeyType::kBF16,
                             KeyType::kI32, KeyType::kU32};

TEST(KeyValueSelect, TieHeavyBothDirectionsEveryDtype) {
  simgpu::Device dev;
  const std::size_t batch = 4, n = 3000, k = 64;
  for (const KeyType t : kAllTypes) {
    const TypedData d = make_tied(t, batch * n, 0xABC0 + static_cast<std::uint64_t>(t));
    std::vector<std::uint64_t> payload(batch * n);
    std::mt19937_64 rng(0xABC1);
    for (auto& p : payload) p = rng();
    const PayloadView pv =
        PayloadView::of(std::span<const std::uint64_t>(payload));
    for (const bool greatest : {false, true}) {
      SelectOptions opt;
      opt.greatest = greatest;
      const auto results =
          select_batch(dev, d.view(), batch, n, k, Algo::kAuto, opt, pv);
      ASSERT_EQ(results.size(), batch);
      for (std::size_t b = 0; b < batch; ++b) {
        verify_typed_row(d, b * n, n, k, greatest, results[b], &payload,
                         std::string(key_type_name(t)) +
                             (greatest ? "/greatest" : "/least") + " row " +
                             std::to_string(b));
      }
    }
  }
}

TEST(KeyValueSelect, SortedResultsAreBestFirstWithPayloadAligned) {
  simgpu::Device dev;
  const std::size_t n = 5000, k = 32;
  for (const KeyType t : kAllTypes) {
    const TypedData d = make_tied(t, n, 0xABD0 + static_cast<std::uint64_t>(t), 200);
    std::vector<std::uint32_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
    for (const bool greatest : {false, true}) {
      SelectOptions opt;
      opt.greatest = greatest;
      opt.sorted = true;
      const SelectResult r =
          select(dev, d.view(), k, Algo::kAuto, opt,
                 PayloadView::of(std::span<const std::uint32_t>(ids)));
      for (std::size_t i = 1; i < k; ++i) {
        const std::uint64_t prev = ordinal(t, result_bits(r, i - 1));
        const std::uint64_t cur = ordinal(t, result_bits(r, i));
        if (greatest) {
          ASSERT_GE(prev, cur) << key_type_name(t) << " position " << i;
        } else {
          ASSERT_LE(prev, cur) << key_type_name(t) << " position " << i;
        }
      }
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ(r.payload[i], r.indices[i])
            << key_type_name(t) << ": sort must permute payload with keys";
      }
    }
  }
}

TEST(KeyValueSelect, FusedRowwiseFamilyCarriesPayload) {
  simgpu::Device dev;
  const std::size_t batch = 64, n = 1024, k = 16;
  for (const Algo algo : {Algo::kFusedWarpRowwise, Algo::kFusedBlockRowwise}) {
    for (const KeyType t :
         {KeyType::kF32, KeyType::kF16, KeyType::kBF16}) {
      const TypedData d = make_tied(t, batch * n, 0xABE0 + static_cast<std::uint64_t>(t));
      std::vector<std::uint64_t> payload(batch * n);
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = i * 3 + 1;
      }
      const auto results = select_batch(
          dev, d.view(), batch, n, k, algo, {},
          PayloadView::of(std::span<const std::uint64_t>(payload)));
      for (std::size_t b = 0; b < batch; ++b) {
        verify_typed_row(d, b * n, n, k, false, results[b], &payload,
                         algo_name(algo) + "/" +
                             std::string(key_type_name(t)) + " row " +
                             std::to_string(b));
      }
    }
  }
}

TEST(KeyValueSelect, IntegerDtypeRejectedByFloatFamilyRows) {
  simgpu::Device dev;
  const TypedData d = make_tied(KeyType::kI32, 1024, 0xABF0);
  EXPECT_THROW(
      (void)select_batch(dev, d.view(), 1, 1024, 8, Algo::kFusedWarpRowwise),
      std::invalid_argument);
  EXPECT_THROW((void)select(dev, d.view(), 8, Algo::kQuickSelect),
               std::invalid_argument);
}

TEST(KeyValueSelect, ShardedTypedGatherAndMerge) {
  // N past the per-device ceiling: shards split, merge, then the payload is
  // gathered against the merged global indices.
  shard::ShardConfig cfg;
  cfg.devices = 2;
  cfg.device_spec.max_select_elems = std::size_t{1} << 16;
  shard::Coordinator coord(cfg);
  const std::size_t n = (std::size_t{1} << 17) + 333;
  const std::size_t k = 128;
  for (const KeyType t : {KeyType::kF16, KeyType::kBF16}) {
    const TypedData d = make_tied(t, n, 0xAC00 + static_cast<std::uint64_t>(t), 500);
    std::vector<std::uint64_t> payload(n);
    for (std::size_t i = 0; i < n; ++i) payload[i] = i ^ 0xDEADull;
    const shard::ShardedResult res = coord.select_typed(
        d.view(), k, PayloadView::of(std::span<const std::uint64_t>(payload)));
    EXPECT_GT(res.shards, 1u) << "test shape must actually shard";
    verify_typed_row(d, 0, n, k, false, res.topk, &payload,
                     "sharded/" + std::string(key_type_name(t)));
  }
  const TypedData di = make_tied(KeyType::kU32, 4096, 0xAC10);
  EXPECT_THROW((void)coord.select_typed(di.view(), 8), std::invalid_argument);
}

TEST(KeyValueSelect, ServingTypedSubmitDecodesPerRequest) {
  serve::ServiceConfig cfg;
  cfg.num_devices = 1;
  cfg.max_batch = 2;
  cfg.max_wait = std::chrono::microseconds(500);
  serve::TopkService svc(cfg);
  const std::size_t n = 2048, k = 16;
  const TypedData a = make_tied(KeyType::kF16, n, 0xAC20, 300);
  const TypedData b = make_tied(KeyType::kBF16, n, 0xAC21, 300);
  auto fa = svc.submit(a.view(), k);
  auto fb = svc.submit(b.view(), k);
  const serve::QueryResult ra = fa.get();
  const serve::QueryResult rb = fb.get();
  ASSERT_EQ(ra.status, serve::QueryStatus::kOk) << ra.error;
  ASSERT_EQ(rb.status, serve::QueryStatus::kOk) << rb.error;
  // Different dtypes must not coalesce into one carrier batch.
  EXPECT_EQ(ra.batch_rows, 1u);
  EXPECT_EQ(rb.batch_rows, 1u);
  verify_typed_row(a, 0, n, k, false, ra.topk, nullptr, "serve/f16");
  verify_typed_row(b, 0, n, k, false, rb.topk, nullptr, "serve/bf16");
  const TypedData di = make_tied(KeyType::kI32, 256, 0xAC22);
  EXPECT_THROW((void)svc.submit(di.view(), 4), std::invalid_argument);
}

}  // namespace
}  // namespace topk
