#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "topk/bitonic.hpp"
#include "topk/grid_select.hpp"
#include "topk/partial_sort_common.hpp"
#include "topk/warp_select.hpp"

namespace topk {
namespace {

/// Run `fn(ctx)` inside a single-block kernel and return.
template <typename F>
void run_in_block(F&& fn) {
  simgpu::Device dev;
  simgpu::launch(dev, {"test", 1, 32}, [&](simgpu::BlockCtx& ctx) { fn(ctx); });
}

TEST(Bitonic, SortsRandomPowerOfTwo) {
  run_in_block([](simgpu::BlockCtx& ctx) {
    std::mt19937 rng(1);
    for (const std::size_t n : {1u, 2u, 4u, 32u, 256u, 1024u}) {
      std::vector<float> keys(n);
      std::vector<std::uint32_t> idx(n);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<float>(rng() % 1000);
        idx[i] = static_cast<std::uint32_t>(i);
      }
      std::vector<float> want = keys;
      bitonic_sort<float>(ctx, keys, idx);
      std::sort(want.begin(), want.end());
      EXPECT_EQ(keys, want) << "n=" << n;
    }
  });
}

TEST(Bitonic, KeepsIndexPayloadAttached) {
  run_in_block([](simgpu::BlockCtx& ctx) {
    std::mt19937 rng(2);
    std::vector<float> original(128);
    for (float& v : original) v = static_cast<float>(rng() % 10000);
    std::vector<float> keys = original;
    std::vector<std::uint32_t> idx(128);
    for (std::size_t i = 0; i < 128; ++i) idx[i] = static_cast<std::uint32_t>(i);
    bitonic_sort<float>(ctx, keys, idx);
    for (std::size_t i = 0; i < 128; ++i) {
      EXPECT_EQ(original[idx[i]], keys[i]) << i;
    }
  });
}

TEST(Bitonic, DescendingSortWorks) {
  run_in_block([](simgpu::BlockCtx& ctx) {
    std::vector<float> keys = {5, 1, 9, 3, 7, 2, 8, 4};
    std::vector<std::uint32_t> idx(8, 0);
    bitonic_sort<float>(ctx, keys, idx, /*ascending=*/false);
    std::vector<float> want = {9, 8, 7, 5, 4, 3, 2, 1};
    EXPECT_EQ(keys, want);
  });
}

TEST(Bitonic, MergePruneKeepsSmallestN) {
  run_in_block([](simgpu::BlockCtx& ctx) {
    std::vector<float> a = {1, 4, 6, 9};
    std::vector<float> b = {2, 3, 5, 7};
    std::vector<std::uint32_t> ai = {10, 11, 12, 13};
    std::vector<std::uint32_t> bi = {20, 21, 22, 23};
    merge_prune<float>(ctx, a, ai, b, bi);
    std::vector<float> want = {1, 2, 3, 4};
    EXPECT_EQ(a, want);
    EXPECT_EQ(ai, (std::vector<std::uint32_t>{10, 20, 21, 11}));
  });
}

TEST(Bitonic, MergePruneChargesLaneOps) {
  simgpu::Device dev;
  const auto stats = simgpu::launch(dev, {"ops", 1, 32}, [](simgpu::BlockCtx& ctx) {
    std::vector<float> a = {1, 4, 6, 9};
    std::vector<float> b = {2, 3, 5, 7};
    std::vector<std::uint32_t> ai(4, 0), bi(4, 0);
    merge_prune<float>(ctx, a, ai, b, bi);
  });
  EXPECT_GT(stats.lane_ops, 0u);
}

TEST(Bitonic, ClosedFormChargesMatchTheNetworks) {
  // The warpfast fast paths replace network *execution* with bulk
  // ctx.ops(...) charges computed from the closed forms in bitonic.hpp;
  // charge identity rests on those forms matching what the real
  // (data-oblivious) networks charge, so pin them here at every size the
  // selection family can use.
  const bool wf_was = simgpu::warpfast_path_enabled();
  simgpu::set_warpfast_path_enabled(false);  // run the exact networks
  for (const std::size_t n : {2u, 4u, 8u, 32u, 256u, 1024u, 2048u}) {
    std::mt19937 rng(static_cast<unsigned>(n));
    std::vector<float> a(n), b(n);
    std::vector<std::uint32_t> ai(n, 0), bi(n, 0);
    for (auto& v : a) v = static_cast<float>(rng() % 997);
    for (auto& v : b) v = static_cast<float>(rng() % 997);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    simgpu::Device dev;
    const auto merge_stats =
        simgpu::launch(dev, {"merge", 1, 32}, [&](simgpu::BlockCtx& ctx) {
          bitonic_merge(ctx, std::span<float>(a), std::span<std::uint32_t>(ai),
                        0, n, /*ascending=*/true);
        });
    EXPECT_EQ(merge_stats.lane_ops, bitonic_merge_ops(n)) << "n=" << n;

    const auto sort_stats =
        simgpu::launch(dev, {"sort", 1, 32}, [&](simgpu::BlockCtx& ctx) {
          bitonic_sort<float>(ctx, a, ai);
        });
    EXPECT_EQ(sort_stats.lane_ops, bitonic_sort_ops(n)) << "n=" << n;

    std::sort(a.begin(), a.end());
    const auto prune_stats =
        simgpu::launch(dev, {"prune", 1, 32}, [&](simgpu::BlockCtx& ctx) {
          merge_prune<float>(ctx, a, ai, b, bi);
        });
    EXPECT_EQ(prune_stats.lane_ops, merge_prune_ops(n)) << "n=" << n;

    // And the warpfast two-pointer fast path must charge exactly the same.
    simgpu::set_warpfast_path_enabled(true);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const auto fast_stats =
        simgpu::launch(dev, {"prune-wf", 1, 32}, [&](simgpu::BlockCtx& ctx) {
          merge_prune<float>(ctx, a, ai, b, bi);
        });
    EXPECT_EQ(fast_stats.lane_ops, merge_prune_ops(n)) << "n=" << n;
    simgpu::set_warpfast_path_enabled(false);
  }
  simgpu::set_warpfast_path_enabled(wf_was);
}

TEST(Bitonic, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(2048), 2048u);
  EXPECT_EQ(next_pow2(2049), 4096u);
}

TEST(TopkList, MaintainsSmallestKAcrossMerges) {
  run_in_block([](simgpu::BlockCtx& ctx) {
    std::vector<float> storage(64);
    std::vector<std::uint32_t> istorage(64);
    TopkList<float> list(storage, istorage, 50);
    std::mt19937 rng(3);
    std::vector<float> all;
    std::vector<float> batch_keys(37);
    std::vector<std::uint32_t> batch_idx(37);
    for (int round = 0; round < 20; ++round) {
      for (std::size_t i = 0; i < batch_keys.size(); ++i) {
        batch_keys[i] = static_cast<float>(rng() % 100000);
        batch_idx[i] = static_cast<std::uint32_t>(all.size());
        all.push_back(batch_keys[i]);
      }
      list.merge(ctx, batch_keys, batch_idx, batch_keys.size());
    }
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(list.keys()[i], all[i]) << i;
    }
  });
}

TEST(TopkList, KthStartsAtSentinel) {
  run_in_block([](simgpu::BlockCtx& ctx) {
    (void)ctx;
    std::vector<float> storage(32);
    std::vector<std::uint32_t> istorage(32);
    TopkList<float> list(storage, istorage, 20);
    EXPECT_EQ(list.kth(), sort_sentinel<float>());
  });
}

TEST(TopkList, RejectsUndersizedStorage) {
  run_in_block([](simgpu::BlockCtx& ctx) {
    (void)ctx;
    std::vector<float> storage(40);  // next_pow2(33) == 64 > 40
    std::vector<std::uint32_t> istorage(40);
    EXPECT_THROW((TopkList<float>(storage, istorage, 33)),
                 std::invalid_argument);
  });
}

TEST(ThreadQueueLen, MatchesFaissTiers) {
  EXPECT_EQ(thread_queue_len(1), 2u);
  EXPECT_EQ(thread_queue_len(32), 2u);
  EXPECT_EQ(thread_queue_len(128), 3u);
  EXPECT_EQ(thread_queue_len(256), 4u);
  EXPECT_EQ(thread_queue_len(1024), 8u);
  EXPECT_EQ(thread_queue_len(2048), 10u);
}

TEST(SharedQueueEngine, SelectsSmallestFromStream) {
  simgpu::Device dev;
  const auto values = data::uniform_values(5000, 77);
  std::vector<float> got(16);
  auto out = dev.alloc<float>(16);
  simgpu::launch(dev, {"stream", 1, 32}, [&, out](simgpu::BlockCtx& ctx) {
    SharedQueueEngine<float> engine(ctx, 16);
    float vals[simgpu::kWarpSize];
    std::uint32_t idxs[simgpu::kWarpSize];
    bool valid[simgpu::kWarpSize];
    for (std::size_t base = 0; base < values.size();
         base += simgpu::kWarpSize) {
      for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
        const std::size_t i = base + static_cast<std::size_t>(lane);
        valid[lane] = i < values.size();
        if (valid[lane]) {
          vals[lane] = values[i];
          idxs[lane] = static_cast<std::uint32_t>(i);
        }
      }
      engine.round(ctx, vals, idxs, valid);
    }
    engine.finalize(ctx);
    for (std::size_t i = 0; i < 16; ++i) {
      ctx.store(out, i, engine.list().keys()[i]);
    }
  });
  std::vector<float> want(values.begin(), values.end());
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out.data()[i], want[i]) << i;
  }
}

TEST(SharedQueueEngine, TwoStepInsertionHandlesOverflowRound) {
  // Feed a round where every lane qualifies while the queue is nearly full:
  // step 1 fills the queue, a flush happens, step 2 inserts the rest.
  simgpu::Device dev;
  auto out = dev.alloc<float>(32);
  simgpu::launch(dev, {"overflow", 1, 32}, [=](simgpu::BlockCtx& ctx) {
    SharedQueueEngine<float> engine(ctx, 32);
    float vals[simgpu::kWarpSize];
    std::uint32_t idxs[simgpu::kWarpSize];
    bool valid[simgpu::kWarpSize];
    // Round 1: 20 qualifying values.
    for (int lane = 0; lane < 32; ++lane) {
      vals[lane] = 1000.0f - static_cast<float>(lane);
      idxs[lane] = static_cast<std::uint32_t>(lane);
      valid[lane] = lane < 20;
    }
    engine.round(ctx, vals, idxs, valid);
    // Round 2: all 32 qualify; 12 fit, flush, 20 go through step two.
    for (int lane = 0; lane < 32; ++lane) {
      vals[lane] = 500.0f - static_cast<float>(lane);
      idxs[lane] = static_cast<std::uint32_t>(32 + lane);
      valid[lane] = true;
    }
    engine.round(ctx, vals, idxs, valid);
    engine.finalize(ctx);
    for (std::size_t i = 0; i < 32; ++i) {
      ctx.store(out, i, engine.list().keys()[i]);
    }
  });
  // The 32 smallest of the 52 pushed values are 469..500.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out.data()[static_cast<std::size_t>(i)], 469.0f + i) << i;
  }
}

TEST(WarpSelect, UsesSingleWarpPerProblem) {
  simgpu::Device dev;
  const auto values = data::uniform_values(4096, 5);
  dev.clear_events();
  (void)select(dev, values, 32, Algo::kWarpSelect);
  bool found = false;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      if (ke->stats.name == "WarpSelect") {
        EXPECT_EQ(ke->stats.grid_blocks, 1);
        EXPECT_EQ(ke->stats.block_threads, 32);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(BlockSelect, UsesFourWarps) {
  simgpu::Device dev;
  const auto values = data::uniform_values(4096, 5);
  dev.clear_events();
  (void)select(dev, values, 32, Algo::kBlockSelect);
  bool found = false;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      if (ke->stats.name == "BlockSelect") {
        EXPECT_EQ(ke->stats.grid_blocks, 1);
        EXPECT_EQ(ke->stats.block_threads, 128);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(GridSelect, UsesManyBlocksForLargeN) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 20, 5);
  dev.clear_events();
  (void)select(dev, values, 32, Algo::kGridSelect);
  int partial_blocks = 0;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      if (ke->stats.name == "GridSelect_partial") {
        partial_blocks = ke->stats.grid_blocks;
      }
    }
  }
  EXPECT_GT(partial_blocks, 16)
      << "GridSelect must spread a large problem over many blocks";
}

TEST(GridSelect, SharedQueueVariantDoesFewerMergeOpsOnSkewedData) {
  // Descending input: every element qualifies, stressing queue flushes.
  simgpu::Device dev;
  std::vector<float> values(1 << 16);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(values.size() - i);
  }
  const auto ops_for = [&](bool shared) {
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(values.size());
    std::copy(values.begin(), values.end(), in.data());
    auto ov = dev.alloc<float>(64);
    auto oi = dev.alloc<std::uint32_t>(64);
    dev.clear_events();
    GridSelectOptions o;
    o.shared_queue = shared;
    grid_select(dev, in, 1, values.size(), 64, ov, oi, o);
    std::uint64_t ops = 0;
    for (const auto& e : dev.events()) {
      if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
        ops += ke->stats.lane_ops;
      }
    }
    return ops;
  };
  EXPECT_LT(ops_for(true), ops_for(false))
      << "shared queue should reduce sort/merge work";
}

TEST(PartialSorts, RejectOversizedK) {
  simgpu::Device dev;
  const auto values = data::uniform_values(10000, 5);
  EXPECT_THROW((void)select(dev, values, 2049, Algo::kWarpSelect),
               std::invalid_argument);
  EXPECT_THROW((void)select(dev, values, 2049, Algo::kBlockSelect),
               std::invalid_argument);
  EXPECT_THROW((void)select(dev, values, 2049, Algo::kGridSelect),
               std::invalid_argument);
  EXPECT_THROW((void)select(dev, values, 257, Algo::kBitonicTopk),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk
