#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

using test::expect_correct;

TEST(QuickSelect, SortedInputDoesNotBreakMedianOfThree) {
  simgpu::Device dev;
  std::vector<float> asc(20000), desc(20000);
  for (std::size_t i = 0; i < asc.size(); ++i) {
    asc[i] = static_cast<float>(i);
    desc[i] = static_cast<float>(asc.size() - i);
  }
  expect_correct(dev, asc, 100, Algo::kQuickSelect);
  expect_correct(dev, desc, 100, Algo::kQuickSelect);
}

TEST(QuickSelect, PivotEqualsKthValue) {
  simgpu::Device dev;
  std::vector<float> values(9999, 7.0f);
  values[0] = 1.0f;
  values[1] = 2.0f;
  expect_correct(dev, values, 2, Algo::kQuickSelect);
  expect_correct(dev, values, 3, Algo::kQuickSelect);
  expect_correct(dev, values, 9999, Algo::kQuickSelect);
}

TEST(QuickSelect, HostRoundTripsEveryIteration) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 16, 21);
  dev.clear_events();
  (void)select(dev, values, 500, Algo::kQuickSelect);
  std::size_t d2h = 0;
  for (const auto& e : dev.events()) {
    if (const auto* m = std::get_if<simgpu::MemcpyEvent>(&e)) {
      d2h += (m->dir == simgpu::MemcpyEvent::Dir::kDeviceToHost) ? 1u : 0u;
    }
  }
  // At least a pivot probe and a counter readback per iteration.
  EXPECT_GE(d2h, 4u);
}

TEST(BucketSelect, NarrowValueRangeStillSplits) {
  // The radix-adversarial distribution is NOT adversarial for BucketSelect:
  // linear interpolation splits any min<max range.
  simgpu::Device dev;
  const auto values = data::radix_adversarial_values(1 << 16, 20, 3);
  expect_correct(dev, values, 1000, Algo::kBucketSelect);
}

TEST(BucketSelect, ExtremeOutliersCrowdTheBuckets) {
  // One huge outlier squeezes everything else into bucket 0; the algorithm
  // must keep iterating and still terminate correctly.
  simgpu::Device dev;
  auto values = data::uniform_values(50000, 9);
  values[12345] = 1e30f;
  values[321] = -1e30f;
  expect_correct(dev, values, 77, Algo::kBucketSelect);
}

TEST(BucketSelect, AllEqualCandidatesAfterFirstSplit) {
  simgpu::Device dev;
  std::vector<float> values(30000, 5.0f);
  for (std::size_t i = 0; i < 10; ++i) values[i * 7] = 1.0f;
  expect_correct(dev, values, 100, Algo::kBucketSelect);
}

TEST(SampleSelect, DuplicateDominatedInputTriggersPivotFallback) {
  simgpu::Device dev;
  std::vector<float> values(50000, 3.0f);
  values[100] = 1.0f;
  values[200] = 2.0f;
  values[300] = 4.0f;
  expect_correct(dev, values, 50, Algo::kSampleSelect);
}

TEST(SampleSelect, SmallInputUsesOnChipSort) {
  simgpu::Device dev;
  const auto values = data::normal_values(3000, 17);
  expect_correct(dev, values, 123, Algo::kSampleSelect);
}

TEST(SampleSelect, UploadsSplittersOverPcie) {
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 17, 23);
  dev.clear_events();
  (void)select(dev, values, 100, Algo::kSampleSelect);
  bool h2d = false;
  for (const auto& e : dev.events()) {
    if (const auto* m = std::get_if<simgpu::MemcpyEvent>(&e)) {
      h2d |= (m->dir == simgpu::MemcpyEvent::Dir::kHostToDevice);
    }
  }
  EXPECT_TRUE(h2d) << "SampleSelect uploads splitters each level";
}

TEST(Sort, OutputIsFullySortedAscending) {
  // Unlike the selection methods, the sort baseline returns the top K in
  // ascending order; the benchmark relies only on set correctness but the
  // sort itself must be right.
  simgpu::Device dev;
  const auto values = data::normal_values(40000, 41);
  const SelectResult r = select(dev, values, 1000, Algo::kSort);
  EXPECT_TRUE(verify_topk(values, 1000, r).empty());
  for (std::size_t i = 1; i < r.values.size(); ++i) {
    EXPECT_LE(r.values[i - 1], r.values[i]) << i;
  }
}

TEST(Sort, StableOrderForEqualKeys) {
  // LSD radix sort with per-block sequential scatter must be stable: equal
  // values keep their original index order.
  simgpu::Device dev;
  std::vector<float> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i % 10);
  }
  const SelectResult r = select(dev, values, 3000, Algo::kSort);
  EXPECT_TRUE(verify_topk(values, 3000, r).empty());
  for (std::size_t i = 1; i < r.values.size(); ++i) {
    if (r.values[i - 1] == r.values[i]) {
      EXPECT_LT(r.indices[i - 1], r.indices[i]) << "instability at " << i;
    }
  }
}

TEST(Sort, TrafficScalesWithFullInputNotK) {
  simgpu::Device dev;
  const auto bytes_for = [&](std::size_t n, std::size_t k) {
    const auto values = data::uniform_values(n, 51);
    dev.clear_events();
    (void)select(dev, values, k, Algo::kSort);
    std::uint64_t bytes = 0;
    for (const auto& e : dev.events()) {
      if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
        bytes += ke->stats.bytes_total();
      }
    }
    return bytes;
  };
  const auto small_k = bytes_for(1 << 16, 8);
  const auto large_k = bytes_for(1 << 16, 1 << 14);
  EXPECT_LT(static_cast<double>(large_k) / static_cast<double>(small_k), 1.2)
      << "sort cost must be K-oblivious";
  const auto big_n = bytes_for(1 << 17, 8);
  EXPECT_GT(static_cast<double>(big_n) / static_cast<double>(small_k), 1.8)
      << "sort cost must scale with N";
}

}  // namespace
}  // namespace topk
