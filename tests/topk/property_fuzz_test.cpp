// Randomized property tests: for arbitrary (n, k, distribution, algorithm)
// draws, every algorithm must return exactly k (value, index) pairs that
// form a valid top-k answer.  Catches interactions (tie handling, buffer
// cursors, last-block races) that the fixed-size sweeps might miss.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

struct FuzzPlan {
  std::uint64_t seed;
};

class FuzzAllAlgorithms : public ::testing::TestWithParam<FuzzPlan> {};

std::vector<float> random_workload(std::mt19937_64& rng, std::size_t n) {
  // Mix distribution families, including duplicate-heavy and quantized
  // inputs, which exercise the tie paths.
  switch (rng() % 5) {
    case 0:
      return data::uniform_values(n, rng());
    case 1:
      return data::normal_values(n, rng());
    case 2:
      return data::radix_adversarial_values(
          n, static_cast<int>(1 + rng() % 28), rng());
    case 3: {
      std::vector<float> v(n);
      const auto cardinality = 1 + rng() % 16;
      for (auto& x : v) {
        x = static_cast<float>(rng() % cardinality) - 5.0f;
      }
      return v;
    }
    default: {
      auto v = data::normal_values(n, rng());
      // Sprinkle sign flips, zeros and repeated extremes.
      for (std::size_t i = 0; i < n; i += 7) v[i] = 0.0f;
      for (std::size_t i = 3; i < n; i += 11) v[i] = -v[i];
      return v;
    }
  }
}

// all_algorithms() covers the public family; fold in the per-thread-queue
// GridSelect flavour (Fig. 11) so both warp-queue layouts get fuzzed.
std::vector<Algo> fuzzed_algorithms() {
  const auto base = all_algorithms();
  std::vector<Algo> algos(base.begin(), base.end());
  algos.push_back(Algo::kGridSelectThreadQueue);
  return algos;
}

TEST_P(FuzzAllAlgorithms, RandomProblemsAreAlwaysCorrect) {
  std::mt19937_64 rng(GetParam().seed);
  simgpu::Device dev;
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 1 + rng() % 60000;
    const auto values = random_workload(rng, n);
    for (Algo algo : fuzzed_algorithms()) {
      const std::size_t k_cap = max_k(algo, n);
      const std::size_t k = 1 + rng() % k_cap;
      const SelectResult r = select(dev, values, k, algo);
      const std::string err = verify_topk(values, k, r);
      ASSERT_TRUE(err.empty())
          << algo_name(algo) << " n=" << n << " k=" << k
          << " seed=" << GetParam().seed << " round=" << round << ": " << err;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAllAlgorithms,
                         ::testing::Values(FuzzPlan{101}, FuzzPlan{202},
                                           FuzzPlan{303}, FuzzPlan{404},
                                           FuzzPlan{505}, FuzzPlan{606},
                                           FuzzPlan{707}, FuzzPlan{808}),
                         [](const ::testing::TestParamInfo<FuzzPlan>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

TEST(FuzzBatched, RandomBatchesAreCorrectPerProblem) {
  std::mt19937_64 rng(0xBA7C4);
  simgpu::Device dev;
  for (int round = 0; round < 5; ++round) {
    const std::size_t batch = 1 + rng() % 8;
    const std::size_t n = 64 + rng() % 8000;
    const auto values = random_workload(rng, batch * n);
    for (Algo algo : {Algo::kAirTopk, Algo::kGridSelect,
                      Algo::kGridSelectThreadQueue, Algo::kRadixSelect,
                      Algo::kWarpSelect, Algo::kBlockSelect, Algo::kSort}) {
      const std::size_t k = 1 + rng() % std::min<std::size_t>(n, 512);
      const auto results = select_batch(dev, values, batch, n, k, algo);
      for (std::size_t b = 0; b < batch; ++b) {
        std::span<const float> slice(values.data() + b * n, n);
        ASSERT_TRUE(verify_topk(slice, k, results[b]).empty())
            << algo_name(algo) << " batch=" << batch << " b=" << b
            << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(FuzzGreatest, LargestSelectionMirrorsSmallest) {
  std::mt19937_64 rng(0x6EA7);
  simgpu::Device dev;
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 16 + rng() % 20000;
    const auto values = random_workload(rng, n);
    const std::size_t k = 1 + rng() % std::min<std::size_t>(n, 300);
    SelectOptions opt;
    opt.greatest = true;
    const SelectResult r = select(dev, values, k, Algo::kAirTopk, opt);
    // Verify by negation: r must be a top-k of -values.
    std::vector<float> neg(values.size());
    for (std::size_t i = 0; i < neg.size(); ++i) neg[i] = -values[i];
    SelectResult mirrored;
    mirrored.indices = r.indices;
    mirrored.values.reserve(k);
    for (float v : r.values) mirrored.values.push_back(-v);
    ASSERT_TRUE(verify_topk(neg, k, mirrored).empty())
        << "round " << round << " n=" << n << " k=" << k;
  }
}

TEST(FuzzDeterminism, SelectedValueMultisetIsRunInvariant) {
  // Result order and tie choices may vary across runs (atomics), but the
  // selected value multiset must not.
  simgpu::Device dev;
  const auto values = data::uniform_values(50000, 0xD37);
  for (Algo algo : {Algo::kAirTopk, Algo::kGridSelect,
                    Algo::kGridSelectThreadQueue, Algo::kQuickSelect}) {
    auto sorted_vals = [&](const SelectResult& r) {
      auto v = r.values;
      std::sort(v.begin(), v.end());
      return v;
    };
    const auto a = sorted_vals(select(dev, values, 777, algo));
    const auto b = sorted_vals(select(dev, values, 777, algo));
    EXPECT_EQ(a, b) << algo_name(algo);
  }
}

}  // namespace
}  // namespace topk
