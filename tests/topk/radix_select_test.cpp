#include "topk/radix_select.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

using test::expect_correct;
using test::standard_distributions;
using test::SweepCase;

class RadixSelectSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RadixSelectSweep, CorrectOnAllDistributions) {
  simgpu::Device dev;
  const auto [n, k] = GetParam();
  std::uint64_t seed = 1000;
  for (const auto& spec : standard_distributions()) {
    const auto values = data::generate(spec, n, seed++);
    expect_correct(dev, values, k, Algo::kRadixSelect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RadixSelectSweep,
    ::testing::Values(SweepCase{1, 1}, SweepCase{100, 7},
                      SweepCase{1000, 1000}, SweepCase{4096, 64},
                      SweepCase{100000, 31}, SweepCase{1 << 18, 4096}),
    test::sweep_case_name);

TEST(RadixSelect, HandlesDuplicatesAndTies) {
  simgpu::Device dev;
  std::vector<float> values(10000, 1.0f);
  for (std::size_t i = 0; i < 100; ++i) values[i * 37] = 0.5f;
  expect_correct(dev, values, 150, Algo::kRadixSelect);
}

TEST(RadixSelect, HostRoundTripsHappenEveryPass) {
  // The defining inefficiency of the host-managed baseline: D2H copies and
  // synchronizations in the middle of the computation (paper §3.1, Fig. 8).
  simgpu::Device dev;
  const auto values = data::uniform_values(1 << 16, 3);
  dev.clear_events();
  (void)select(dev, values, 100, Algo::kRadixSelect);
  std::size_t d2h = 0, syncs = 0;
  for (const auto& e : dev.events()) {
    if (const auto* m = std::get_if<simgpu::MemcpyEvent>(&e)) {
      d2h += (m->dir == simgpu::MemcpyEvent::Dir::kDeviceToHost) ? 1u : 0u;
    }
    syncs += std::holds_alternative<simgpu::SyncEvent>(e) ? 1u : 0u;
  }
  EXPECT_GE(d2h, 1u);
  EXPECT_GE(syncs, 1u);
}

TEST(RadixSelect, BatchedLaunchCostScalesWithBatch) {
  simgpu::Device dev;
  const auto kernels_for_batch = [&](std::size_t batch) {
    const auto values = data::uniform_values(batch * 4096, 11);
    dev.clear_events();
    (void)select_batch(dev, values, batch, 4096, 32, Algo::kRadixSelect);
    std::size_t kernels = 0;
    for (const auto& e : dev.events()) {
      kernels += std::holds_alternative<simgpu::KernelEvent>(e) ? 1u : 0u;
    }
    return kernels;
  };
  const std::size_t one = kernels_for_batch(1);
  const std::size_t eight = kernels_for_batch(8);
  EXPECT_GE(eight, 8 * one / 2)
      << "baseline processes batched problems one at a time";
}

}  // namespace
}  // namespace topk
