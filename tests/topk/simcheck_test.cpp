// The topk_simcheck driver: every algorithm, on every standard distribution,
// over an (N, K) grid, with the simcheck sanitizer fully enabled — asserting
// both correct results and a clean report (zero false positives from real
// kernels), plus the TOPK_SIMCHECK env-toggle plumbing.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

namespace topk {
namespace {

using test::standard_distributions;

struct GridCase {
  Algo algo;
  std::size_t n;
  std::size_t k;
};

std::string grid_case_name(const ::testing::TestParamInfo<GridCase>& info) {
  std::string name = algo_name(info.param.algo);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_n" + std::to_string(info.param.n) + "_k" +
         std::to_string(info.param.k);
}

class SimcheckMatrix : public ::testing::TestWithParam<GridCase> {};

TEST_P(SimcheckMatrix, CleanAndCorrectUnderFullChecking) {
  const auto [algo, n, k] = GetParam();
  std::uint64_t seed = 4242;
  for (const auto& spec : standard_distributions()) {
    simgpu::Device dev;
    dev.enable_sanitizer();
    const auto values = data::generate(spec, n, seed++);
    const SelectResult r = select(dev, values, k, algo);
    const std::string err = verify_topk(values, k, r);
    EXPECT_TRUE(err.empty())
        << algo_name(algo) << " on " << spec.name() << ": " << err;
    const auto rep = dev.sanitizer()->snapshot();
    EXPECT_TRUE(rep.clean()) << algo_name(algo) << " on " << spec.name()
                             << " raised issues:\n"
                             << rep.to_string();
  }
}

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  for (Algo algo : all_algorithms()) {
    for (const auto& [n, k] : std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1},
             {33, 4},
             {1000, 100},
             {4096, 256},
             {65536, 512},
         }) {
      if (k > max_k(algo, n)) continue;
      cases.push_back({algo, n, k});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, SimcheckMatrix,
                         ::testing::ValuesIn(grid_cases()), grid_case_name);

TEST(Simcheck, BatchedSelectionIsCleanUnderChecking) {
  for (Algo algo : {Algo::kAirTopk, Algo::kGridSelect, Algo::kRadixSelect}) {
    simgpu::Device dev;
    dev.enable_sanitizer();
    const std::size_t batch = 4, n = 2000, k = 32;
    const auto values = data::normal_values(batch * n, 99);
    const auto results = select_batch(dev, values, batch, n, k, algo);
    ASSERT_EQ(results.size(), batch);
    EXPECT_TRUE(dev.sanitizer()->snapshot().clean())
        << algo_name(algo) << ":\n" << dev.sanitizer()->snapshot().to_string();
  }
}

// ---------------------------------------------------------------------------
// TOPK_SIMCHECK environment toggle.

class SimcheckEnv : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("TOPK_SIMCHECK"); }
};

TEST_F(SimcheckEnv, UnsetAndZeroLeaveTheSanitizerOff) {
  ::unsetenv("TOPK_SIMCHECK");
  EXPECT_FALSE(simcheck_env_enabled());
  ::setenv("TOPK_SIMCHECK", "0", 1);
  EXPECT_FALSE(simcheck_env_enabled());
  ::setenv("TOPK_SIMCHECK", "", 1);
  EXPECT_FALSE(simcheck_env_enabled());

  simgpu::Device dev;
  const auto values = data::uniform_values(1000, 5);
  (void)select(dev, values, 10, Algo::kAirTopk);
  EXPECT_EQ(dev.sanitizer(), nullptr);
}

TEST_F(SimcheckEnv, SetEnablesTheSanitizerOnTheDevice) {
  ::setenv("TOPK_SIMCHECK", "1", 1);
  EXPECT_TRUE(simcheck_env_enabled());

  simgpu::Device dev;
  const auto values = data::uniform_values(1000, 6);
  const SelectResult r = select(dev, values, 10, Algo::kGridSelect);
  EXPECT_TRUE(verify_topk(values, 10, r).empty());
  ASSERT_NE(dev.sanitizer(), nullptr);
  EXPECT_TRUE(dev.sanitizer()->snapshot().clean());
}

TEST_F(SimcheckEnv, PreexistingIssuesDoNotAbortALaterSelection) {
  ::setenv("TOPK_SIMCHECK", "1", 1);
  simgpu::Device dev;
  dev.enable_sanitizer();
  // Seed a report entry before the selection; select() must only abort on
  // issues raised by its own launches.
  auto tiny = dev.alloc_zero<float>(2, "tiny");
  simgpu::launch(dev, {"seed issue", 1, 32},
                 [&](simgpu::BlockCtx& ctx) { ctx.store(tiny, 5, 0.0f); });
  ASSERT_EQ(dev.sanitizer()->issue_count(), 1u);
  const auto values = data::uniform_values(1000, 7);
  EXPECT_NO_THROW((void)select(dev, values, 10, Algo::kAirTopk));
}

TEST(Simcheck, ThrowOnNewIssuesFormatsTheReport) {
  simgpu::Device dev;
  dev.enable_sanitizer();
  auto tiny = dev.alloc_zero<float>(2, "tiny buffer");
  simgpu::launch(dev, {"buggy kernel", 1, 32},
                 [&](simgpu::BlockCtx& ctx) { ctx.store(tiny, 9, 0.0f); });
  const simgpu::Sanitizer& san = *dev.sanitizer();
  ASSERT_EQ(san.issue_count(), 1u);

  // No new issues past the snapshot: no throw.
  EXPECT_NO_THROW(throw_if_new_issues(san, 1, Algo::kAirTopk));

  // New issues: runtime_error carrying the formatted findings.
  try {
    throw_if_new_issues(san, 0, Algo::kAirTopk);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("simcheck"), std::string::npos) << msg;
    EXPECT_NE(msg.find("buggy kernel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tiny buffer"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace topk
