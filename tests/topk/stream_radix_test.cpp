// Streaming large-K radix select: correctness of the chunk/fold loop (forced
// with a tiny chunk target so every code path runs at test-sized n), the
// large-shape acceptance the tier exists for (N=2^24, K=2^20, fp32 and fp16
// keys with u32 payloads), and the bounded-workspace contract — the pooled
// workspace high-water mark must be BYTE-IDENTICAL across N once the chunk
// schedule saturates, because scratch is sized by chunk/union capacity, not
// by the row length.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/key_codec.hpp"
#include "topk/stream_radix.hpp"

namespace topk {
namespace {

template <typename T>
std::vector<T> reference_best(std::span<const T> data, std::size_t k,
                              bool greatest) {
  std::vector<T> want(data.begin(), data.end());
  if (greatest) {
    std::partial_sort(want.begin(), want.begin() + static_cast<long>(k),
                      want.end(), std::greater<>());
  } else {
    std::partial_sort(want.begin(), want.begin() + static_cast<long>(k),
                      want.end());
  }
  want.resize(k);
  std::sort(want.begin(), want.end());
  return want;
}

/// Drive stream_radix() directly with an artificially small chunk target so
/// the union-fold path runs many times at test-sized n.
template <typename T>
void check_direct(const std::vector<T>& data, std::size_t batch,
                  std::size_t n, std::size_t k, bool greatest,
                  std::size_t chunk_target) {
  simgpu::Device dev;
  dev.enable_sanitizer();
  auto in = dev.alloc<T>(batch * n);
  std::copy(data.begin(), data.end(), in.data());
  // The host-side staging copy bypasses the shadow; mark it like an upload.
  dev.sanitizer()->mark_initialized(in.data(), batch * n * sizeof(T));
  auto ov = dev.alloc<T>(batch * k);
  auto oi = dev.alloc<std::uint32_t>(batch * k);
  StreamRadixOptions opt;
  opt.chunk_target = chunk_target;
  stream_radix<T>(dev, in, batch, n, k, ov, oi, opt, greatest);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const T> row(data.data() + b * n, n);
    std::vector<T> got(ov.data() + b * k, ov.data() + (b + 1) * k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint32_t idx = oi.data()[b * k + i];
      ASSERT_LT(idx, n) << "row " << b;
      ASSERT_EQ(row[idx], got[i]) << "row " << b << " position " << i;
    }
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, reference_best(row, k, greatest))
        << "row " << b << " chunk_target=" << chunk_target;
  }
  ASSERT_TRUE(dev.sanitizer()->snapshot().clean())
      << dev.sanitizer()->snapshot().to_string();
}

TEST(StreamRadix, FoldLoopCorrectAcrossChunkSchedules) {
  const std::size_t n = 40000;
  const auto f = data::uniform_values(n, 0x57A1);
  std::mt19937_64 rng(0x57A2);
  std::vector<std::uint32_t> u(n);
  for (auto& v : u) v = static_cast<std::uint32_t>(rng());
  for (const std::size_t k : {std::size_t{7}, std::size_t{256}}) {
    for (const bool greatest : {false, true}) {
      // chunk_target 1<<12 forces ~10 chunks (many folds); 1<<22 is the
      // production single-chunk path at this n.
      for (const std::size_t ct :
           {std::size_t{1} << 12, std::size_t{1} << 22}) {
        check_direct<float>(f, 1, n, k, greatest, ct);
        check_direct<std::uint32_t>(u, 1, n, k, greatest, ct);
      }
    }
  }
}

TEST(StreamRadix, BatchedAndDuplicateHeavy) {
  // Few distinct values: the fold unions are saturated with ties, the
  // worst case for the cursor-reserved filter appends.
  const std::size_t batch = 3, n = 9001, k = 500;
  std::mt19937_64 rng(0x57A3);
  std::vector<float> data(batch * n);
  for (auto& v : data) v = static_cast<float>(rng() % 17);
  check_direct<float>(data, batch, n, k, false, std::size_t{1} << 12);
  check_direct<float>(data, batch, n, k, true, std::size_t{1} << 12);
}

TEST(StreamRadix, RegistryPlanRunsThroughCorePath) {
  // Through plan_select/run_select like any registry row, both carriers,
  // both orders, at an n large enough for two real chunks.
  simgpu::Device dev;
  const std::size_t n = (std::size_t{1} << 22) + 12345;
  const std::size_t k = 2048;
  const auto values = data::uniform_values(n, 0x57A4);
  for (const bool greatest : {false, true}) {
    SelectOptions opt;
    opt.greatest = greatest;
    const SelectResult r =
        select(dev, values, k, Algo::kStreamRadix, opt);
    std::vector<float> got = r.values;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, reference_best(std::span<const float>(values), k, greatest))
        << (greatest ? "greatest" : "least");
  }
}

/// One typed streaming select; returns the pooled-workspace high-water mark.
std::size_t run_streaming(KeyView keys, std::size_t n, std::size_t k,
                          PayloadView payload, SelectResult* out) {
  simgpu::Device dev;
  SelectOptions opt;
  auto results =
      select_batch(dev, keys, 1, n, k, Algo::kStreamRadix, opt, payload);
  if (out) *out = std::move(results[0]);
  return dev.memory_pool().stats().high_water;
}

TEST(StreamRadix, LargeShapeAcceptanceF32AndF16WithPayload) {
  // The acceptance shape from the tier's contract: N=2^24, K=2^20 — a
  // problem 4x larger than any single-chunk plan would allow in scratch.
  const std::size_t n = std::size_t{1} << 24;
  const std::size_t k = std::size_t{1} << 20;
  const auto values = data::uniform_values(n, 0x57A5);
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  const PayloadView pv = PayloadView::of(std::span<const std::uint32_t>(ids));

  // fp32 keys: exact against nth_element.
  SelectResult r32;
  run_streaming(KeyView::of(std::span<const float>(values)), n, k, pv, &r32);
  ASSERT_EQ(r32.values.size(), k);
  std::vector<float> got = r32.values;
  std::sort(got.begin(), got.end());
  std::vector<float> want(values);
  std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                   want.end());
  want.resize(k);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_EQ(r32.payload[i], r32.indices[i]) << "payload gather broke";
  }

  // fp16 keys: exact in the ordinal domain (ties collapse heavily at
  // half precision with 2^24 draws from [0,1) — the multiset check is on
  // ordinals, which the carrier preserves exactly).
  std::vector<half> hkeys;
  hkeys.reserve(n);
  for (const float v : values) hkeys.emplace_back(v);
  SelectResult r16;
  run_streaming(KeyView::of(std::span<const half>(hkeys)), n, k, pv, &r16);
  ASSERT_EQ(r16.values_bits.size(), k);
  std::vector<std::uint16_t> got16(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t idx = r16.indices[i];
    ASSERT_LT(idx, n);
    ASSERT_EQ(r16.values_bits[i], hkeys[idx].bits()) << "position " << i;
    ASSERT_EQ(r16.payload[i], idx);
    got16[i] = RadixTraits<half>::to_radix(hkeys[idx]);
  }
  std::vector<std::uint16_t> want16(n);
  for (std::size_t i = 0; i < n; ++i) {
    want16[i] = RadixTraits<half>::to_radix(hkeys[i]);
  }
  std::nth_element(want16.begin(), want16.begin() + static_cast<long>(k) - 1,
                   want16.end());
  want16.resize(k);
  std::sort(want16.begin(), want16.end());
  std::sort(got16.begin(), got16.end());
  EXPECT_EQ(got16, want16);
}

TEST(StreamRadix, WorkspaceHighWaterIndependentOfN) {
  // Once n exceeds the chunk target the scratch footprint is a function of
  // (chunk target, k) only.  2^22, 2^23 and 2^24 rows at the same k must
  // report byte-identical pooled high-water marks.
  const std::size_t k = std::size_t{1} << 16;
  std::vector<std::size_t> marks;
  for (const int log_n : {22, 23, 24}) {
    const std::size_t n = std::size_t{1} << log_n;
    const auto values = data::uniform_values(n, 0x57A6 + log_n);
    SelectResult r;
    marks.push_back(run_streaming(
        KeyView::of(std::span<const float>(values)), n, k, {}, &r));
    ASSERT_EQ(r.values.size(), k);
  }
  EXPECT_GT(marks[0], 0u);
  EXPECT_EQ(marks[0], marks[1]) << "2^22 vs 2^23";
  EXPECT_EQ(marks[1], marks[2]) << "2^23 vs 2^24";
}

TEST(StreamRadix, MaxKCeilingEnforcedEverywhere) {
  // kMaxK (2^20) is the system-wide K ceiling; one past it must be rejected
  // with the limit named, in the planner, the validator and the reference.
  const std::size_t too_big = kMaxK + 1;
  const simgpu::DeviceSpec spec;
  const std::size_t n = std::size_t{1} << 24;
  const auto expect_named = [](const std::function<void()>& fn) {
    try {
      fn();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("TOPK_MAX_K"), std::string::npos)
          << e.what();
    }
  };
  expect_named([&] {
    (void)plan_select(spec, 1, n, too_big, Algo::kStreamRadix, {});
  });
  expect_named([&] {
    // The host-entry validator checks the ceiling before k > n, so a tiny
    // row still reports the TOPK_MAX_K violation.
    simgpu::Device dev;
    const std::vector<float> tiny(4, 0.0f);
    (void)select(dev, std::span<const float>(tiny), too_big, Algo::kAuto);
  });
  expect_named([&] {
    const std::vector<float> tiny(4, 0.0f);
    (void)reference_select(tiny, too_big);
  });
  // The ceiling itself is plannable on the streaming row.
  EXPECT_NO_THROW(
      (void)plan_select(spec, 1, n, kMaxK, Algo::kStreamRadix, {}));
}

}  // namespace
}  // namespace topk
