// Counter-invariance suite for the tile-granular fast path and the
// threshold-gated warp fast path layered on top of it: for every ported
// algorithm, across distributions and (N, K, batch) shapes, the recorded
// KernelStats stream — every counter of every kernel, in launch order — and
// the modeled device time must be BIT-IDENTICAL across the full
// {tile × warpfast × simcheck × pool} grid relative to the scalar baseline.  The
// selected value multiset must also agree (indices may differ only where
// elements tie at the K-th value, which is claimed by atomic ticket across
// concurrent blocks), and simcheck must stay clean with both fast paths
// enabled (the warp fast path is gated off under the sanitizer, so that leg
// also proves the exact path reproduces the bulk charges).

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/key_codec.hpp"

namespace topk {
namespace {

using test::standard_distributions;

// Per-block counter *sums* are deterministic, but per-block *maxima*
// (max_block_bytes / max_block_lane_ops, and the model term derived from
// them) depend on which concurrent block wins atomic tickets for ties at
// the K-th value — scheduler noise, not a tile-path effect.  Pin the pool
// to one thread (the env is read when the process-wide pool is first built,
// which is after this initializer) so runs are bit-for-bit reproducible and
// the strict comparison below is meaningful.
const bool g_single_threaded = [] {
  ::setenv("TOPK_SIM_THREADS", "1", /*overwrite=*/1);
  return true;
}();

/// Restores the process-global tile + warpfast + memory-pool toggles however
/// a test exits.
class TileGuard {
 public:
  TileGuard()
      : tile_was_(simgpu::tile_path_enabled()),
        warpfast_was_(simgpu::warpfast_path_enabled()),
        pool_was_(simgpu::pool_enabled()) {}
  ~TileGuard() {
    simgpu::set_tile_path_enabled(tile_was_);
    simgpu::set_warpfast_path_enabled(warpfast_was_);
    simgpu::set_pool_enabled(pool_was_);
  }

 private:
  bool tile_was_;
  bool warpfast_was_;
  bool pool_was_;
};

struct RunTrace {
  std::vector<simgpu::KernelStats> kernels;
  double model_us = 0.0;
  std::vector<std::vector<float>> sorted_values;  // one per problem
  bool sanitizer_clean = true;
  std::string sanitizer_report;
};

RunTrace run_once(std::span<const float> data, std::size_t batch,
                  std::size_t n, std::size_t k, Algo algo, bool tile,
                  bool warpfast, bool simcheck, bool pool = true) {
  simgpu::set_tile_path_enabled(tile);
  simgpu::set_warpfast_path_enabled(warpfast);
  simgpu::set_pool_enabled(pool);
  simgpu::Device dev;
  if (simcheck) dev.enable_sanitizer();
  const auto results = select_batch(dev, data, batch, n, k, algo);

  RunTrace t;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      t.kernels.push_back(ke->stats);
    }
  }
  t.model_us = simgpu::CostModel(dev.spec()).total_us(dev.events());
  for (std::size_t b = 0; b < batch; ++b) {
    const std::string err = verify_topk(
        std::span<const float>(data.data() + b * n, n), k, results[b]);
    EXPECT_TRUE(err.empty())
        << algo_name(algo) << " tile=" << tile << " warpfast=" << warpfast
        << " simcheck=" << simcheck << " problem " << b << ": " << err;
    std::vector<float> vals = results[b].values;
    std::sort(vals.begin(), vals.end());
    t.sorted_values.push_back(std::move(vals));
  }
  if (simcheck) {
    const auto rep = dev.sanitizer()->snapshot();
    t.sanitizer_clean = rep.clean();
    t.sanitizer_report = rep.to_string();
  }
  return t;
}

void expect_identical_stats(const RunTrace& a, const RunTrace& b,
                            const std::string& what) {
  ASSERT_EQ(a.kernels.size(), b.kernels.size()) << what;
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    const simgpu::KernelStats& x = a.kernels[i];
    const simgpu::KernelStats& y = b.kernels[i];
    const std::string at = what + " kernel[" + std::to_string(i) + "] = " +
                           std::string(x.name);
    EXPECT_EQ(x.name, y.name) << at;
    EXPECT_EQ(x.grid_blocks, y.grid_blocks) << at;
    EXPECT_EQ(x.block_threads, y.block_threads) << at;
    EXPECT_EQ(x.bytes_read, y.bytes_read) << at;
    EXPECT_EQ(x.bytes_written, y.bytes_written) << at;
    EXPECT_EQ(x.lane_ops, y.lane_ops) << at;
    EXPECT_EQ(x.atomic_ops, y.atomic_ops) << at;
    EXPECT_EQ(x.scattered_atomic_ops, y.scattered_atomic_ops) << at;
    EXPECT_EQ(x.block_syncs, y.block_syncs) << at;
    EXPECT_EQ(x.max_block_bytes, y.max_block_bytes) << at;
    EXPECT_EQ(x.max_block_lane_ops, y.max_block_lane_ops) << at;
  }
  EXPECT_EQ(a.model_us, b.model_us) << what << " modeled time";
  EXPECT_EQ(a.sorted_values, b.sorted_values) << what << " selected values";
}

struct InvarianceCase {
  Algo algo;
  std::size_t batch;
  std::size_t n;
  std::size_t k;
};

std::string case_name(const ::testing::TestParamInfo<InvarianceCase>& info) {
  std::string name = algo_name(info.param.algo);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_b" + std::to_string(info.param.batch) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k);
}

class TileInvariance : public ::testing::TestWithParam<InvarianceCase> {};

TEST_P(TileInvariance, StatsAndModeledTimeBitIdenticalAcrossModes) {
  const auto [algo, batch, n, k] = GetParam();
  TileGuard guard;
  std::uint64_t seed = 77;
  for (const auto& spec : standard_distributions()) {
    const auto values = data::generate(spec, batch * n, seed++);
    const RunTrace scalar =
        run_once(values, batch, n, k, algo, false, false, false);
    const RunTrace tile =
        run_once(values, batch, n, k, algo, true, false, false);
    // Warpfast without the tile path must be inert: the warp fast path only
    // activates on tile-backed spans, so this leg is bit-identical to scalar.
    const RunTrace wf_no_tile =
        run_once(values, batch, n, k, algo, false, true, false);
    const RunTrace wf =
        run_once(values, batch, n, k, algo, true, true, false);
    // Under simcheck the warp fast path gates itself off; this leg proves
    // the exact per-round path reproduces the fast path's bulk charges.
    const RunTrace wf_checked =
        run_once(values, batch, n, k, algo, true, true, true);
    // Memory-pool invariance: slab provenance never feeds the cost model,
    // so disabling pooled reuse must be invisible to counters, modeled time
    // and results — on the scalar baseline, with both fast paths, and under
    // simcheck.
    const RunTrace nopool_scalar =
        run_once(values, batch, n, k, algo, false, false, false, false);
    const RunTrace nopool_wf =
        run_once(values, batch, n, k, algo, true, true, false, false);
    const RunTrace nopool_checked =
        run_once(values, batch, n, k, algo, true, true, true, false);
    const std::string what = std::string(algo_name(algo)) + " on " +
                             spec.name();
    ASSERT_FALSE(scalar.kernels.empty()) << what;
    expect_identical_stats(scalar, tile, what + " [tile vs scalar]");
    expect_identical_stats(scalar, wf_no_tile,
                           what + " [warpfast w/o tile vs scalar]");
    expect_identical_stats(scalar, wf, what + " [tile+warpfast vs scalar]");
    expect_identical_stats(scalar, wf_checked,
                           what + " [tile+warpfast+simcheck vs scalar]");
    expect_identical_stats(scalar, nopool_scalar,
                           what + " [pool off vs scalar]");
    expect_identical_stats(scalar, nopool_wf,
                           what + " [pool off + tile+warpfast vs scalar]");
    expect_identical_stats(scalar, nopool_checked,
                           what + " [pool off + simcheck vs scalar]");
    EXPECT_TRUE(wf_checked.sanitizer_clean)
        << what << " raised issues with the fast paths enabled:\n"
        << wf_checked.sanitizer_report;
    EXPECT_TRUE(nopool_checked.sanitizer_clean)
        << what << " raised issues with the pool disabled:\n"
        << nopool_checked.sanitizer_report;
  }
}

std::vector<InvarianceCase> cases() {
  // Every algorithm whose inner loops ride the tile path, plus the
  // fused-last-filter AIR variant (its fused filter scans through the same
  // tile helpers).  The warp-queue family — GridSelect in both queue
  // flavours, WarpSelect, BlockSelect, both fused row-wise variants, and the
  // bucketed approximate tier (exact at the default recall_target = 1.0) —
  // additionally exercises the threshold-gated warp fast path.
  const Algo algos[] = {Algo::kAirTopk,          Algo::kSort,
                        Algo::kRadixSelect,      Algo::kGridSelect,
                        Algo::kAirTopkFusedFilter, Algo::kWarpSelect,
                        Algo::kBlockSelect,      Algo::kGridSelectThreadQueue,
                        Algo::kFusedWarpRowwise, Algo::kFusedBlockRowwise,
                        Algo::kBucketApprox};
  std::vector<InvarianceCase> cases;
  for (Algo algo : algos) {
    cases.push_back({algo, 1, 999, 1});          // sub-tile problem
    cases.push_back({algo, 1, 4096, 64});        // a few exact tiles
    cases.push_back({algo, 1, 70001, 517});      // many tiles + ragged tail
    cases.push_back({algo, 3, 10007, 100});      // batched, odd sizes
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, TileInvariance, ::testing::ValuesIn(cases()),
                         case_name);

// ---- typed keys across the same mode grid ---------------------------------
// The dtype layer must be invisible to the counter stream too: a typed
// select (f16 on the float carrier with a u32 payload, i32 on the u32
// carrier with a u64 payload) produces bit-identical KernelStats, modeled
// time, result bits and gathered payloads across the full
// {tile x warpfast x simcheck x pool} grid.  Payload gather is a host-side
// post-pass, so it must contribute zero kernels to the stream.

struct TypedTrace {
  std::vector<simgpu::KernelStats> kernels;
  double model_us = 0.0;
  std::vector<std::uint32_t> sorted_bits;
  std::vector<std::uint64_t> sorted_payload;
  bool sanitizer_clean = true;
  std::string sanitizer_report;
};

TypedTrace run_typed_once(KeyView keys, PayloadView payload, std::size_t n,
                          std::size_t k, Algo algo, bool tile, bool warpfast,
                          bool simcheck, bool pool) {
  simgpu::set_tile_path_enabled(tile);
  simgpu::set_warpfast_path_enabled(warpfast);
  simgpu::set_pool_enabled(pool);
  simgpu::Device dev;
  if (simcheck) dev.enable_sanitizer();
  const auto results = select_batch(dev, keys, 1, n, k, algo, {}, payload);

  TypedTrace t;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      t.kernels.push_back(ke->stats);
    }
  }
  t.model_us = simgpu::CostModel(dev.spec()).total_us(dev.events());
  const SelectResult& r = results[0];
  for (std::size_t i = 0; i < k; ++i) {
    t.sorted_bits.push_back(r.dtype == KeyType::kF32
                                ? std::bit_cast<std::uint32_t>(r.values[i])
                                : r.values_bits[i]);
  }
  std::sort(t.sorted_bits.begin(), t.sorted_bits.end());
  t.sorted_payload = r.payload;
  std::sort(t.sorted_payload.begin(), t.sorted_payload.end());
  if (simcheck) {
    const auto rep = dev.sanitizer()->snapshot();
    t.sanitizer_clean = rep.clean();
    t.sanitizer_report = rep.to_string();
  }
  return t;
}

void expect_identical_typed(const TypedTrace& a, const TypedTrace& b,
                            const std::string& what) {
  ASSERT_EQ(a.kernels.size(), b.kernels.size()) << what;
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    EXPECT_EQ(a.kernels[i].name, b.kernels[i].name) << what << " kernel " << i;
    EXPECT_EQ(a.kernels[i].bytes_read, b.kernels[i].bytes_read)
        << what << " kernel " << i;
    EXPECT_EQ(a.kernels[i].bytes_written, b.kernels[i].bytes_written)
        << what << " kernel " << i;
    EXPECT_EQ(a.kernels[i].lane_ops, b.kernels[i].lane_ops)
        << what << " kernel " << i;
  }
  EXPECT_EQ(a.model_us, b.model_us) << what << " modeled time";
  EXPECT_EQ(a.sorted_bits, b.sorted_bits) << what << " result bits";
  EXPECT_EQ(a.sorted_payload, b.sorted_payload) << what << " payloads";
}

TEST(TypedTileInvariance, DtypeAndPayloadInvisibleToCounterStream) {
  TileGuard guard;
  const std::size_t n = 70001, k = 517;
  const auto values = data::generate(
      {data::Distribution::kAdversarial, 20}, n, 0xD7);

  std::vector<half> f16;
  f16.reserve(n);
  std::vector<std::int32_t> i32;
  i32.reserve(n);
  for (const float v : values) {
    f16.emplace_back(v);
    i32.push_back(static_cast<std::int32_t>(v * 1e6f));
  }
  std::vector<std::uint32_t> pay32(n);
  std::vector<std::uint64_t> pay64(n);
  for (std::size_t i = 0; i < n; ++i) {
    pay32[i] = static_cast<std::uint32_t>(i);
    pay64[i] = static_cast<std::uint64_t>(i) << 21;
  }

  struct Leg {
    KeyView keys;
    PayloadView payload;
    Algo algo;
    const char* what;
  };
  const Leg legs[] = {
      {KeyView::of(std::span<const half>(f16)),
       PayloadView::of(std::span<const std::uint32_t>(pay32)),
       Algo::kRadixSelect, "f16+u32pay radixselect"},
      {KeyView::of(std::span<const std::int32_t>(i32)),
       PayloadView::of(std::span<const std::uint64_t>(pay64)),
       Algo::kAirTopk, "i32+u64pay air"},
  };
  for (const Leg& leg : legs) {
    const TypedTrace scalar = run_typed_once(leg.keys, leg.payload, n, k,
                                             leg.algo, false, false, false,
                                             true);
    ASSERT_FALSE(scalar.kernels.empty()) << leg.what;
    const TypedTrace wf = run_typed_once(leg.keys, leg.payload, n, k,
                                         leg.algo, true, true, false, true);
    const TypedTrace wf_checked = run_typed_once(
        leg.keys, leg.payload, n, k, leg.algo, true, true, true, true);
    const TypedTrace nopool = run_typed_once(leg.keys, leg.payload, n, k,
                                             leg.algo, true, true, false,
                                             false);
    expect_identical_typed(scalar, wf,
                           std::string(leg.what) + " [tile+warpfast]");
    expect_identical_typed(scalar, wf_checked,
                           std::string(leg.what) + " [simcheck]");
    expect_identical_typed(scalar, nopool,
                           std::string(leg.what) + " [pool off]");
    EXPECT_TRUE(wf_checked.sanitizer_clean)
        << leg.what << ":\n" << wf_checked.sanitizer_report;
    // The float-keyed baseline on identical carrier data must produce the
    // same kernel stream shape (payload adds no kernels).
    const TypedTrace nopay = run_typed_once(leg.keys, {}, n, k, leg.algo,
                                            false, false, false, true);
    ASSERT_EQ(scalar.kernels.size(), nopay.kernels.size())
        << leg.what << ": payload gather must stay off-device";
    EXPECT_EQ(scalar.model_us, nopay.model_us) << leg.what;
  }
}

}  // namespace
}  // namespace topk
