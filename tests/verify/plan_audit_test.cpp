// Static plan auditor coverage, two halves:
//
//  - seeded violations: hand-built schedules each carrying exactly one
//    defect (segment overflow, read-before-write, block write race, lifetime
//    misuse, missing footprint, bad bind) must be caught with the right
//    DefectKind AND the right kernel/segment/step attribution — an auditor
//    that fires on the wrong step is as useless as one that never fires;
//  - clean audits: every plan the registry can produce (all kAlgoTable rows,
//    both sort orders, several shapes) must audit clean, which is the
//    workspace-safety proof topk_audit gates CI on.

#include "verify/plan_audit.hpp"

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "core/topk.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/registry.hpp"

namespace topk::verify {
namespace {

using simgpu::Access;
using simgpu::AffineVar;
using simgpu::KernelSchedule;
using simgpu::WriteScope;
using simgpu::WorkspaceLayout;

/// Synthetic kernels for the seeded-violation schedules.  Registered under
/// an "at_" prefix so they can never collide with real algorithm kernels.
void register_test_footprints() {
  simgpu::register_footprint(
      {"at_producer",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 4},
           {"dst", Access::kWrite, WriteScope::kBlockLocal,
            {{AffineVar::kN}}, 4},
       }});
  simgpu::register_footprint(
      {"at_consumer",
       {
           {"src", Access::kRead, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
           {"out", Access::kWrite, WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}}, 4},
       }});
  simgpu::register_footprint(
      {"at_scan",
       {
           {"buf", Access::kReadWrite, WriteScope::kSingleBlock,
            {{AffineVar::kSegElems}}, 4},
       }});
  simgpu::register_footprint(
      {"at_two_writers",
       {
           {"a", Access::kWrite, WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}}, 4},
           {"b", Access::kWrite, WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}}, 4},
       }});
}

/// One producer writing `seg`, recorded with shape (batch=1, n, k).
void record_producer(KernelSchedule& sched, int seg, std::size_t n,
                     std::size_t k) {
  sched.add_launch("at_producer", 4, 256, 1, n, k,
                   {{"in", simgpu::kBindInput, Access::kRead},
                    {"dst", seg, Access::kWrite}});
}

std::size_t count_kind(const AuditReport& rep, DefectKind kind) {
  std::size_t count = 0;
  for (const Finding& f : rep.findings) count += f.kind == kind ? 1 : 0;
  return count;
}

TEST(PlanAudit, CleanHandBuiltScheduleIsClean) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("scratch", 1024));
  KernelSchedule sched;
  record_producer(sched, seg, 1024, 16);
  sched.add_launch("at_consumer", 4, 256, 1, 1024, 16,
                   {{"src", seg, Access::kRead},
                    {"out", simgpu::kBindOutVals, Access::kWrite}});
  const AuditReport rep = audit_schedule(sched, layout);
  EXPECT_TRUE(rep.clean()) << to_json(rep);
  EXPECT_EQ(rep.steps_walked, 2u);
  EXPECT_EQ(rep.binds_checked, 4u);
}

TEST(PlanAudit, SeededOverflowIsCaughtWithAttribution) {
  register_test_footprints();
  WorkspaceLayout layout;
  // at_producer's dst extent is n elements; give the segment only n/2.
  const int seg = static_cast<int>(layout.add<float>("undersized", 512));
  KernelSchedule sched;
  record_producer(sched, seg, 1024, 16);
  const AuditReport rep = audit_schedule(sched, layout);
  ASSERT_EQ(count_kind(rep, DefectKind::kOverflow), 1u) << to_json(rep);
  const Finding& f = rep.findings.front();
  EXPECT_EQ(f.kind, DefectKind::kOverflow);
  EXPECT_EQ(f.kernel, "at_producer");
  EXPECT_EQ(f.segment, "undersized");
  EXPECT_EQ(f.step_index, 0u);
  EXPECT_EQ(f.n, 1024u);
  EXPECT_NE(f.detail.find("1024"), std::string::npos) << f.detail;
  EXPECT_NE(f.detail.find("512"), std::string::npos) << f.detail;
}

TEST(PlanAudit, SeededReadBeforeWriteIsCaughtWithAttribution) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("never written", 1024));
  KernelSchedule sched;  // consumer only: nothing ever produced the segment
  sched.add_launch("at_consumer", 4, 256, 1, 1024, 16,
                   {{"src", seg, Access::kRead},
                    {"out", simgpu::kBindOutVals, Access::kWrite}});
  const AuditReport rep = audit_schedule(sched, layout);
  ASSERT_EQ(rep.findings.size(), 1u) << to_json(rep);
  const Finding& f = rep.findings.front();
  EXPECT_EQ(f.kind, DefectKind::kUninitRead);
  EXPECT_EQ(f.kernel, "at_consumer");
  EXPECT_EQ(f.segment, "never written");
  EXPECT_EQ(f.step_index, 0u);
}

TEST(PlanAudit, WriteOrderMattersNotJustPresence) {
  // The same two steps in the other order audit clean — the rule is about
  // sequencing, so flipping producer and consumer must flip the verdict.
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("late", 1024));
  KernelSchedule sched;
  sched.add_launch("at_consumer", 4, 256, 1, 1024, 16,
                   {{"src", seg, Access::kRead},
                    {"out", simgpu::kBindOutVals, Access::kWrite}});
  record_producer(sched, seg, 1024, 16);
  const AuditReport rep = audit_schedule(sched, layout);
  EXPECT_EQ(count_kind(rep, DefectKind::kUninitRead), 1u) << to_json(rep);
  EXPECT_EQ(rep.findings.front().step_index, 0u);
}

TEST(PlanAudit, SeededSingleBlockRaceIsCaughtWithAttribution) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<std::uint32_t>("hist", 256));
  KernelSchedule sched;
  record_producer(sched, seg, 256, 16);
  // at_scan's buf is single-block discipline; launching it wide races.
  sched.add_launch("at_scan", 8, 256, 1, 256, 16,
                   {{"buf", seg, Access::kReadWrite}});
  const AuditReport rep = audit_schedule(sched, layout);
  ASSERT_EQ(rep.findings.size(), 1u) << to_json(rep);
  const Finding& f = rep.findings.front();
  EXPECT_EQ(f.kind, DefectKind::kBlockRace);
  EXPECT_EQ(f.kernel, "at_scan");
  EXPECT_EQ(f.segment, "hist");
  EXPECT_EQ(f.step_index, 1u);
  EXPECT_NE(f.detail.find("8 blocks"), std::string::npos) << f.detail;

  // The same bind at grid == 1 is the declared discipline: clean.
  KernelSchedule serial;
  record_producer(serial, seg, 256, 16);
  serial.add_launch("at_scan", 1, 256, 1, 256, 16,
                    {{"buf", seg, Access::kReadWrite}});
  EXPECT_TRUE(audit_schedule(serial, layout).clean());
}

TEST(PlanAudit, SeededWriterWriterOverlapIsCaughtWithAttribution) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("shared out", 1024));
  KernelSchedule sched;
  // Both write operands aimed at one segment from a multi-block grid.
  sched.add_launch("at_two_writers", 4, 256, 1, 1024, 16,
                   {{"a", seg, Access::kWrite}, {"b", seg, Access::kWrite}});
  const AuditReport rep = audit_schedule(sched, layout);
  ASSERT_EQ(rep.findings.size(), 1u) << to_json(rep);
  const Finding& f = rep.findings.front();
  EXPECT_EQ(f.kind, DefectKind::kBlockRace);
  EXPECT_EQ(f.kernel, "at_two_writers");
  EXPECT_EQ(f.segment, "shared out");
  EXPECT_NE(f.detail.find("'a'"), std::string::npos) << f.detail;
  EXPECT_NE(f.detail.find("'b'"), std::string::npos) << f.detail;

  // Disjoint targets: clean.
  const int seg2 = static_cast<int>(layout.add<float>("other out", 1024));
  KernelSchedule disjoint;
  disjoint.add_launch("at_two_writers", 4, 256, 1, 1024, 16,
                      {{"a", seg, Access::kWrite},
                       {"b", seg2, Access::kWrite}});
  EXPECT_TRUE(audit_schedule(disjoint, layout).clean());
}

TEST(PlanAudit, SeededUseAfterReleaseIsCaughtWithAttribution) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("freed early", 1024));
  KernelSchedule sched;
  record_producer(sched, seg, 1024, 16);
  sched.add_release({seg});
  sched.add_launch("at_consumer", 4, 256, 1, 1024, 16,
                   {{"src", seg, Access::kRead},
                    {"out", simgpu::kBindOutVals, Access::kWrite}});
  const AuditReport rep = audit_schedule(sched, layout);
  ASSERT_EQ(rep.findings.size(), 1u) << to_json(rep);
  const Finding& f = rep.findings.front();
  EXPECT_EQ(f.kind, DefectKind::kLifetime);
  EXPECT_EQ(f.kernel, "at_consumer");
  EXPECT_EQ(f.segment, "freed early");
  EXPECT_EQ(f.step_index, 2u);
}

TEST(PlanAudit, DoubleReleaseAndStaleBindAreLifetimeDefects) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("twice", 64));
  KernelSchedule sched;
  record_producer(sched, seg, 64, 4);
  sched.add_release({seg});
  sched.add_release({seg});  // double release
  const AuditReport rep = audit_schedule(sched, layout);
  ASSERT_EQ(rep.findings.size(), 1u) << to_json(rep);
  EXPECT_EQ(rep.findings.front().kind, DefectKind::kLifetime);
  EXPECT_EQ(rep.findings.front().step_index, 2u);

  // A bind to a segment id the layout never planned is a stale bind.
  KernelSchedule stale;
  stale.add_launch("at_consumer", 4, 256, 1, 64, 4,
                   {{"src", 99, Access::kRead},
                    {"out", simgpu::kBindOutVals, Access::kWrite}});
  const AuditReport rep2 = audit_schedule(stale, layout);
  ASSERT_EQ(rep2.findings.size(), 1u) << to_json(rep2);
  EXPECT_EQ(rep2.findings.front().kind, DefectKind::kLifetime);
  EXPECT_NE(rep2.findings.front().detail.find("99"), std::string::npos);
}

TEST(PlanAudit, SeededMissingFootprintIsCaught) {
  WorkspaceLayout layout;
  KernelSchedule sched;
  sched.add_launch("at_never_registered_kernel", 1, 256, 1, 64, 4, {});
  const AuditReport rep = audit_schedule(sched, layout);
  ASSERT_EQ(rep.findings.size(), 1u) << to_json(rep);
  EXPECT_EQ(rep.findings.front().kind, DefectKind::kMissingFootprint);
  EXPECT_EQ(rep.findings.front().kernel, "at_never_registered_kernel");
}

TEST(PlanAudit, SeededBadBindsAreCaught) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("scratch", 64));
  // Unknown operand name.
  KernelSchedule unknown;
  unknown.add_launch("at_producer", 1, 256, 1, 64, 4,
                     {{"in", simgpu::kBindInput, Access::kRead},
                      {"dst", seg, Access::kWrite},
                      {"no_such_operand", seg, Access::kRead}});
  const AuditReport rep = audit_schedule(unknown, layout);
  ASSERT_EQ(rep.findings.size(), 1u) << to_json(rep);
  EXPECT_EQ(rep.findings.front().kind, DefectKind::kBadBind);
  EXPECT_NE(rep.findings.front().detail.find("no_such_operand"),
            std::string::npos);

  // Required operand left unbound.
  KernelSchedule unbound;
  unbound.add_launch("at_producer", 1, 256, 1, 64, 4,
                     {{"in", simgpu::kBindInput, Access::kRead}});
  const AuditReport rep2 = audit_schedule(unbound, layout);
  ASSERT_EQ(rep2.findings.size(), 1u) << to_json(rep2);
  EXPECT_EQ(rep2.findings.front().kind, DefectKind::kBadBind);
  EXPECT_NE(rep2.findings.front().detail.find("'dst'"), std::string::npos);
}

TEST(PlanAudit, JsonReportCarriesKindAndAttribution) {
  register_test_footprints();
  WorkspaceLayout layout;
  const int seg = static_cast<int>(layout.add<float>("never written", 16));
  KernelSchedule sched;
  sched.add_launch("at_consumer", 1, 256, 1, 16, 4,
                   {{"src", seg, Access::kRead},
                    {"out", simgpu::kBindOutVals, Access::kWrite}});
  const std::string json = to_json(audit_schedule(sched, layout));
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"uninit-read\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"at_consumer\""), std::string::npos);
  EXPECT_NE(json.find("\"segment\": \"never written\""), std::string::npos);
}

/// ---- Clean audits over the real registry ---------------------------------

class RegistryAudit : public ::testing::TestWithParam<topk::AlgoRow> {};

TEST_P(RegistryAudit, EveryPlannedShapeAuditsClean) {
  const topk::AlgoRow& row = GetParam();
  const simgpu::DeviceSpec spec{};
  const struct { std::size_t batch, n, k; } shapes[] = {
      {1, 1u << 12, 8}, {1, 1u << 15, 100}, {4, 1u << 10, 1}, {2, 4096, 256},
  };
  for (const auto& s : shapes) {
    if (row.k_limit != 0 && s.k > row.k_limit) continue;
    for (const bool greatest : {false, true}) {
      topk::SelectOptions opt;
      opt.greatest = greatest;
      const topk::ExecutionPlan plan =
          topk::plan_select(spec, s.batch, s.n, s.k, row.algo, opt);
      const AuditReport rep = audit_plan(plan);
      EXPECT_TRUE(rep.clean())
          << row.key << " batch=" << s.batch << " n=" << s.n << " k=" << s.k
          << " greatest=" << greatest << ": " << to_json(rep);
      EXPECT_GT(rep.steps_walked, 0u) << row.key << ": plan recorded nothing";
      EXPECT_GT(rep.binds_checked, 0u) << row.key;
    }
  }
}

std::vector<topk::AlgoRow> auditable_rows() {
  std::vector<topk::AlgoRow> rows;
  for (const topk::AlgoRow& row : topk::kAlgoTable) {
    if (row.plan != nullptr) rows.push_back(row);
  }
  return rows;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RegistryAudit,
                         ::testing::ValuesIn(auditable_rows()),
                         [](const auto& info) {
                           std::string name(info.param.key);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PlanAudit, NegateWrapPrependsHostStepAndStaysClean) {
  // A largest-K plan on a non-native algorithm must start with the host
  // negation writing the planned segment; the auditor relies on it for the
  // init-order proof of every downstream input read.
  const simgpu::DeviceSpec spec{};
  topk::SelectOptions opt;
  opt.greatest = true;
  const topk::ExecutionPlan plan =
      topk::plan_select(spec, 1, 4096, 32, topk::Algo::kRadixSelect, opt);
  const simgpu::KernelSchedule& sched = plan.schedule();
  ASSERT_FALSE(sched.steps.empty());
  EXPECT_EQ(sched.steps.front().kind, simgpu::KernelStep::Kind::kHost);
  EXPECT_EQ(sched.steps.front().name, "negate input");
  for (std::size_t i = 1; i < sched.steps.size(); ++i) {
    for (const simgpu::OperandBind& bind : sched.steps[i].binds) {
      EXPECT_NE(bind.target, simgpu::kBindInput)
          << "step " << i << " still reads the raw input under negate";
    }
  }
  EXPECT_TRUE(audit_plan(plan).clean());
}

TEST(PlanAudit, AuditPlanRejectsInvalidHandle) {
  EXPECT_THROW((void)audit_plan(topk::ExecutionPlan{}), std::logic_error);
}

}  // namespace
}  // namespace topk::verify
