#!/usr/bin/env python3
"""Forbid raw device-memory access inside simgpu kernel lambdas.

Kernel bodies (the lambda argument of ``simgpu::launch``) must go through the
accounted BlockCtx accessors (load/store/atomic_*) or the SharedSpan proxies.
Touching a DeviceBuffer through ``.data()`` or ``.host_span()`` inside a
kernel bypasses both the traffic accounting and the simcheck sanitizer, so
this linter rejects any ``.data()`` / ``.host_span()`` call textually inside
a ``launch(...)`` call expression under ``src/topk``.

Raw-span *escapes* — ``unchecked_data()`` on a SharedSpan and the
``raw_view(...)`` unwrap helper — are a second, related hazard: they are only
legal behind the tile/warpfast gates, because ``unchecked_data()`` returns a
usable pointer exclusively while the tile fast path is on and no sanitizer is
attached.  Every escape site must therefore show gate evidence nearby: a
nullptr/empty check of the unwrapped result (the canonical gate — the null
return *is* the gate state), or an explicit ``tile_path_enabled()`` /
``warpfast_enabled()`` / per-block gate flag test.  The linter flags escape
sites in ``src/topk`` with no such evidence within a window around the call
(20 lines before to 60 after, spanning hoisted pointers checked at first
use).

The two-phase execution contract adds a third rule: ``*_run()`` function
bodies in ``src/topk`` must perform **zero** device allocations — every byte
of scratch is described by ``*_plan()`` in a WorkspaceLayout and served from
the bound pooled Workspace, so calling ``dev.alloc``/``dev.alloc_zero`` (or
``Device::alloc*`` through any other spelling) inside a run body is flagged.
``plan()`` functions, legacy one-shot wrappers, and other non-hot helpers may
allocate freely — the rule keys on the ``_run`` suffix of the enclosing
function definition.  A line may opt out with ``// lint:allow-run-alloc``.

A line may opt out of the raw-access rules with a ``// lint:allow-raw-access``
comment (none needed today).  Run with ``--self-test`` to check the linter
against embedded positive/negative samples.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

LAUNCH_RE = re.compile(r"(?<![\w:])(?:simgpu\s*::\s*)?launch\s*\(")
RAW_ACCESS_RE = re.compile(r"\.\s*(data|host_span)\s*\(")
ESCAPE_RE = re.compile(r"\.\s*(unchecked_data)\s*\(|(?<![\w:])(raw_view)\s*\(")
GATE_EVIDENCE_RE = re.compile(
    r"[!=]=\s*nullptr|\.\s*empty\s*\(|tile_path_enabled\s*\("
    r"|warpfast_enabled\s*\(|packed_q_|kProxyView"
)
RUN_FN_RE = re.compile(r"(?<![\w:])[A-Za-z_]\w*_run\s*\(")
RUN_ALLOC_RE = re.compile(
    r"(?<![\w:])(?:\w+\s*\.\s*|\w+\s*->\s*|Device\s*::\s*)alloc(?:_zero)?\b"
)
ESCAPE_WINDOW_BEFORE = 20
ESCAPE_WINDOW_AFTER = 60
ALLOW_MARKER = "lint:allow-raw-access"
ALLOW_RUN_ALLOC_MARKER = "lint:allow-run-alloc"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            # Keep lint markers visible to the checker.
            chunk = text[i:j]
            out.append(chunk if "lint:allow" in chunk else " " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def launch_call_spans(text: str):
    """Yield (start, end) offsets of every launch(...) call expression."""
    for m in LAUNCH_RE.finditer(text):
        depth = 0
        i = m.end() - 1  # the opening paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    yield m.end(), i
                    break
            i += 1


def run_fn_body_spans(text: str):
    """Yield (name, start, end) offsets of every ``*_run()`` DEFINITION body.

    A match of ``name_run(`` is a definition when the token after its closing
    paren is an opening brace (calls end in ``;`` or sit inside an
    expression); the span is the brace-matched body.
    """
    for m in RUN_FN_RE.finditer(text):
        depth = 0
        i = m.end() - 1  # the opening paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            continue
        j = i + 1
        while j < len(text) and text[j] in " \t\r\n":
            j += 1
        if j >= len(text) or text[j] != "{":
            continue  # a call or declaration, not a definition
        depth = 0
        k = j
        while k < len(text):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    yield m.group(0).rstrip("(").rstrip(), j, k
                    break
            k += 1


def lint_text(text: str, path: str):
    """Return a list of ``path:line: message`` strings for one file."""
    clean = strip_comments_and_strings(text)
    lines = clean.splitlines(keepends=True)
    findings = []
    for start, end in launch_call_spans(clean):
        for m in RAW_ACCESS_RE.finditer(clean, start, end):
            line_no = clean.count("\n", 0, m.start()) + 1
            line = lines[line_no - 1] if line_no <= len(lines) else ""
            if ALLOW_MARKER in line:
                continue
            findings.append(
                f"{path}:{line_no}: raw .{m.group(1)}() inside a kernel "
                "lambda; use the BlockCtx accessors (load/store/atomic_*) "
                "or SharedSpan"
            )
    # Zero-alloc run contract: no Device allocation inside a *_run() body.
    for name, start, end in run_fn_body_spans(clean):
        for m in RUN_ALLOC_RE.finditer(clean, start, end):
            line_no = clean.count("\n", 0, m.start()) + 1
            line = lines[line_no - 1] if line_no <= len(lines) else ""
            if ALLOW_RUN_ALLOC_MARKER in line:
                continue
            findings.append(
                f"{path}:{line_no}: device allocation inside {name}(); "
                "run() bodies are zero-alloc — describe the scratch in the "
                "plan's WorkspaceLayout and fetch it with Workspace::get"
            )
    # Raw-span escapes: unchecked_data()/raw_view() anywhere in the file
    # must sit behind the tile/warpfast gates — evidenced by a nullptr or
    # empty() check of the unwrapped result, or an explicit gate test,
    # within the surrounding window.
    for m in ESCAPE_RE.finditer(clean):
        name = m.group(1) or m.group(2)
        line_no = clean.count("\n", 0, m.start()) + 1
        line = lines[line_no - 1] if line_no <= len(lines) else ""
        if ALLOW_MARKER in line:
            continue
        lo = max(0, line_no - 1 - ESCAPE_WINDOW_BEFORE)
        hi = min(len(lines), line_no + ESCAPE_WINDOW_AFTER)
        window = "".join(lines[lo:hi])
        if GATE_EVIDENCE_RE.search(window):
            continue
        findings.append(
            f"{path}:{line_no}: raw-span escape {name}() with no tile/"
            "warpfast gate evidence nearby; check the unwrapped result "
            "against nullptr/empty() or test the gate explicitly"
        )
    return findings


def lint_tree(root: pathlib.Path):
    findings = []
    for path in sorted(root.rglob("*.hpp")) + sorted(root.rglob("*.cpp")):
        findings.extend(lint_text(path.read_text(), str(path)))
    return findings


BAD_SAMPLE = """
void f(simgpu::Device& dev, simgpu::DeviceBuffer<float> buf) {
  simgpu::launch(dev, {"bad", 1, 32}, [=](simgpu::BlockCtx& ctx) {
    buf.data()[0] = 1.0f;            // bypasses accounting
    auto s = buf.host_span();        // ditto
  });
}
"""

GOOD_SAMPLE = """
void g(simgpu::Device& dev, simgpu::DeviceBuffer<float> buf) {
  simgpu::launch(dev, {"good", 1, 32}, [=](simgpu::BlockCtx& ctx) {
    ctx.store(buf, 0, ctx.load(buf, 1));  // string red herring: ".data()"
  });
  buf.data()[0] = 1.0f;  // host-side, outside the launch: allowed
  std::vector<float> host(4);
  use(host.data());
}
"""

ALLOWED_SAMPLE = """
void h(simgpu::Device& dev, simgpu::DeviceBuffer<float> buf) {
  simgpu::launch(dev, {"waived", 1, 32}, [=](simgpu::BlockCtx& ctx) {
    buf.data()[0] = 1.0f;  // lint:allow-raw-access
  });
}
"""


BAD_ESCAPE_SAMPLE = """
void leak(simgpu::SharedSpan<float> s) {
  float* p = s.unchecked_data();
  p[0] = 1.0f;  // never checked, no gate in sight
  auto rv = raw_view(s);
  use(rv);
}
"""

GOOD_ESCAPE_SAMPLE = """
void gated(simgpu::SharedSpan<float> s) {
  float* p = s.unchecked_data();
  if (p != nullptr) p[0] = 1.0f;
  const auto rk = raw_view(s);
  if (!rk.empty()) use(rk);
  if (ctx.warpfast_enabled()) {
    use(raw_view(s).data());  // explicit gate right above
  }
}
"""


BAD_RUN_SAMPLE = """
template <typename T>
void foo_run(simgpu::Device& dev, const FooPlan<T>& plan,
             simgpu::Workspace& ws) {
  auto scratch = dev.alloc<float>(plan.n);       // hot-path allocation
  auto zeroed = dev.alloc_zero<int>(4, "hist");  // ditto
}
"""

GOOD_RUN_SAMPLE = """
template <typename T>
FooPlan<T> foo_plan(const Shape& s, simgpu::DeviceSpec const& spec,
                    simgpu::WorkspaceLayout& layout) {
  FooPlan<T> p;
  p.seg = layout.add<float>("foo scratch", s.n);
  return p;
}

template <typename T>
void foo_run(simgpu::Device& dev, const FooPlan<T>& plan,
             simgpu::Workspace& ws) {
  auto scratch = ws.get<float>(plan.seg);
  other_run(dev, plan, ws);  // calling a sibling run() is not a definition
}

// Legacy one-shot wrapper: allocates freely, not a *_run body.
template <typename T>
SelectResult foo_select(simgpu::Device& dev, std::span<const T> in) {
  auto buf = dev.alloc<T>(in.size());
  simgpu::Workspace ws(dev);
  return run_it(dev, buf, ws);
}
"""

ALLOWED_RUN_SAMPLE = """
void bar_run(simgpu::Device& dev) {
  auto dbg = dev.alloc<float>(1);  // lint:allow-run-alloc
}
"""


def self_test() -> int:
    bad = lint_text(BAD_SAMPLE, "<bad>")
    if len(bad) != 2:
        print(f"self-test FAILED: expected 2 findings in BAD_SAMPLE, "
              f"got {len(bad)}: {bad}")
        return 1
    good = lint_text(GOOD_SAMPLE, "<good>")
    if good:
        print(f"self-test FAILED: false positives in GOOD_SAMPLE: {good}")
        return 1
    allowed = lint_text(ALLOWED_SAMPLE, "<allowed>")
    if allowed:
        print(f"self-test FAILED: marker not honoured: {allowed}")
        return 1
    bad_escape = lint_text(BAD_ESCAPE_SAMPLE, "<bad-escape>")
    if len(bad_escape) != 2:
        print(f"self-test FAILED: expected 2 findings in BAD_ESCAPE_SAMPLE, "
              f"got {len(bad_escape)}: {bad_escape}")
        return 1
    good_escape = lint_text(GOOD_ESCAPE_SAMPLE, "<good-escape>")
    if good_escape:
        print(f"self-test FAILED: false positives in GOOD_ESCAPE_SAMPLE: "
              f"{good_escape}")
        return 1
    bad_run = lint_text(BAD_RUN_SAMPLE, "<bad-run>")
    if len(bad_run) != 2:
        print(f"self-test FAILED: expected 2 findings in BAD_RUN_SAMPLE, "
              f"got {len(bad_run)}: {bad_run}")
        return 1
    good_run = lint_text(GOOD_RUN_SAMPLE, "<good-run>")
    if good_run:
        print(f"self-test FAILED: false positives in GOOD_RUN_SAMPLE: "
              f"{good_run}")
        return 1
    allowed_run = lint_text(ALLOWED_RUN_SAMPLE, "<allowed-run>")
    if allowed_run:
        print(f"self-test FAILED: run-alloc marker not honoured: "
              f"{allowed_run}")
        return 1
    print("lint_kernels self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("roots", nargs="*", default=["src/topk"],
                        help="directories to lint (default: src/topk)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded linter self-test and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    repo = pathlib.Path(__file__).resolve().parent.parent
    findings = []
    for root in args.roots:
        p = pathlib.Path(root)
        if not p.is_absolute():
            p = repo / p
        if not p.exists():
            print(f"lint_kernels: no such directory: {p}")
            return 2
        findings.extend(lint_tree(p))
    for f in findings:
        print(f)
    if findings:
        print(f"lint_kernels: {len(findings)} finding(s)")
        return 1
    print("lint_kernels: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
