#!/usr/bin/env python3
"""Forbid raw device-memory access inside simgpu kernel lambdas.

Kernel bodies (the lambda argument of ``simgpu::launch``) must go through the
accounted BlockCtx accessors (load/store/atomic_*) or the SharedSpan proxies.
Touching a DeviceBuffer through ``.data()`` or ``.host_span()`` inside a
kernel bypasses both the traffic accounting and the simcheck sanitizer, so
this linter rejects any ``.data()`` / ``.host_span()`` call textually inside
a ``launch(...)`` call expression under ``src/topk``.

Raw-span *escapes* — ``unchecked_data()`` on a SharedSpan and the
``raw_view(...)`` unwrap helper — are a second, related hazard: they are only
legal behind the tile/warpfast gates, because ``unchecked_data()`` returns a
usable pointer exclusively while the tile fast path is on and no sanitizer is
attached.  Every escape site must therefore show gate evidence in an
*enclosing brace scope*: a nullptr/empty check of the unwrapped result (the
canonical gate — the null return *is* the gate state), or an explicit
``tile_path_enabled()`` / ``warpfast_enabled()`` / per-block gate flag test.
The search walks outward from the innermost scope containing the escape
(including each scope's ``if (...)`` header), so evidence in a *neighboring*
function can never vouch for an ungated escape the way the old fixed
line-window heuristic allowed.

The two-phase execution contract adds a third rule: ``*_run()`` function
bodies in ``src/topk`` must perform **zero** device allocations — every byte
of scratch is described by ``*_plan()`` in a WorkspaceLayout and served from
the bound pooled Workspace, so calling ``dev.alloc``/``dev.alloc_zero`` (or
``Device::alloc*`` through any other spelling) inside a run body is flagged.
``plan()`` functions, legacy one-shot wrappers, and other non-hot helpers may
allocate freely — the rule keys on the ``_run`` suffix of the enclosing
function definition.  A line may opt out with ``// lint:allow-run-alloc``.

Fourth rule — footprint completeness: every kernel name that appears in a
``LaunchConfig{"..."}`` literal or an ``intern_name("family(...")`` prefix
under the linted roots must have a matching
``simgpu::register_footprint({"name", ...})`` registration somewhere under
``src/`` (per-pass ``(digits)`` suffixes resolve to the bare family name,
mirroring ``simgpu::find_footprint``).  A launch whose kernel has no
footprint is invisible to both the launch-time contract check and the static
plan auditor, so it fails the lint.

A line may opt out of the raw-access rules with a ``// lint:allow-raw-access``
comment (none needed today).  ``--json`` emits the findings as a JSON
document for CI artifact collection.  Run with ``--self-test`` to check the
linter against embedded positive/negative samples.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

LAUNCH_RE = re.compile(r"(?<![\w:])(?:simgpu\s*::\s*)?launch\s*\(")
RAW_ACCESS_RE = re.compile(r"\.\s*(data|host_span)\s*\(")
ESCAPE_RE = re.compile(r"\.\s*(unchecked_data)\s*\(|(?<![\w:])(raw_view)\s*\(")
GATE_EVIDENCE_RE = re.compile(
    r"[!=]=\s*nullptr|\.\s*empty\s*\(|tile_path_enabled\s*\("
    r"|warpfast_enabled\s*\(|packed_q_|kProxyView"
)
RUN_FN_RE = re.compile(r"(?<![\w:])[A-Za-z_]\w*_run\s*\(")
RUN_ALLOC_RE = re.compile(
    r"(?<![\w:])(?:\w+\s*\.\s*|\w+\s*->\s*|Device\s*::\s*)alloc(?:_zero)?\b"
)
LAUNCHCFG_RE = re.compile(r"(?<!\w)LaunchConfig\b")
STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
INTERN_RE = re.compile(r'intern_name\(\s*\n?\s*"((?:[^"\\]|\\.)*)"')
REGISTER_RE = re.compile(r'register_footprint\(\s*\{\s*"((?:[^"\\]|\\.)*)"')
PASS_SUFFIX_RE = re.compile(r"\(\d*$|\(\d+\)$")
# The gate-evidence walk stops at scopes introduced by these keywords:
# namespace/class bodies are where *sibling* functions live, so evidence
# found there would let a neighboring function vouch for an ungated escape.
STOP_SCOPE_RE = re.compile(r"\b(namespace|class|struct|union|enum)\b")
ALLOW_MARKER = "lint:allow-raw-access"
ALLOW_RUN_ALLOC_MARKER = "lint:allow-run-alloc"


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments (and string/char literals unless ``keep_strings``),
    preserving newlines."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            # Keep lint markers visible to the checker.
            chunk = text[i:j]
            out.append(chunk if "lint:allow" in chunk else " " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append(
                    quote + " " * (j - i - 2) + (quote if j - i >= 2 else "")
                )
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def launch_call_spans(text: str):
    """Yield (start, end) offsets of every launch(...) call expression."""
    for m in LAUNCH_RE.finditer(text):
        depth = 0
        i = m.end() - 1  # the opening paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    yield m.end(), i
                    break
            i += 1


def run_fn_body_spans(text: str):
    """Yield (name, start, end) offsets of every ``*_run()`` DEFINITION body.

    A match of ``name_run(`` is a definition when the token after its closing
    paren is an opening brace (calls end in ``;`` or sit inside an
    expression); the span is the brace-matched body.
    """
    for m in RUN_FN_RE.finditer(text):
        depth = 0
        i = m.end() - 1  # the opening paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            continue
        j = i + 1
        while j < len(text) and text[j] in " \t\r\n":
            j += 1
        if j >= len(text) or text[j] != "{":
            continue  # a call or declaration, not a definition
        depth = 0
        k = j
        while k < len(text):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    yield m.group(0).rstrip("(").rstrip(), j, k
                    break
            k += 1


def brace_pairs(text: str):
    """All matched ``{``/``}`` offset pairs (on comment/string-blanked text)."""
    stack = []
    pairs = []
    for i, c in enumerate(text):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def enclosing_scopes(pairs, pos: int):
    """Brace scopes containing ``pos``, innermost first."""
    return sorted(
        ((o, c) for o, c in pairs if o < pos <= c), key=lambda p: -p[0]
    )


def matching_close_paren(text: str, open_paren: int) -> int:
    depth = 0
    i = open_paren
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def scope_with_header(text: str, open_brace: int) -> int:
    """Offset where the scope's statement header starts: scan back from the
    opening brace past the attached ``if (...)`` / ``for (...)`` / lambda
    intro to the end of the previous statement or scope."""
    i = open_brace - 1
    while i >= 0 and text[i] not in ";{}":
        i -= 1
    return i + 1


def finding(path: str, line: int, rule: str, message: str) -> dict:
    return {"path": path, "line": line, "rule": rule, "message": message}


def lint_text(text: str, path: str):
    """Return a list of finding dicts for one file."""
    clean = strip_comments_and_strings(text)
    lines = clean.splitlines(keepends=True)
    line_starts = [0]
    for ln in lines:
        line_starts.append(line_starts[-1] + len(ln))
    findings = []
    for start, end in launch_call_spans(clean):
        for m in RAW_ACCESS_RE.finditer(clean, start, end):
            line_no = clean.count("\n", 0, m.start()) + 1
            line = lines[line_no - 1] if line_no <= len(lines) else ""
            if ALLOW_MARKER in line:
                continue
            findings.append(finding(
                path, line_no, "raw-access",
                f"raw .{m.group(1)}() inside a kernel lambda; use the "
                "BlockCtx accessors (load/store/atomic_*) or SharedSpan",
            ))
    # Zero-alloc run contract: no Device allocation inside a *_run() body.
    for name, start, end in run_fn_body_spans(clean):
        for m in RUN_ALLOC_RE.finditer(clean, start, end):
            line_no = clean.count("\n", 0, m.start()) + 1
            line = lines[line_no - 1] if line_no <= len(lines) else ""
            if ALLOW_RUN_ALLOC_MARKER in line:
                continue
            findings.append(finding(
                path, line_no, "run-alloc",
                f"device allocation inside {name}(); run() bodies are "
                "zero-alloc — describe the scratch in the plan's "
                "WorkspaceLayout and fetch it with Workspace::get",
            ))
    # Raw-span escapes: unchecked_data()/raw_view() must sit behind the
    # tile/warpfast gates — evidenced by a nullptr or empty() check of the
    # unwrapped result, or an explicit gate test, inside an enclosing brace
    # scope (innermost outward; a scope's if/for header counts as part of
    # it).  Scope-bounded, so a gate in an adjacent function never vouches.
    pairs = brace_pairs(clean)
    for m in ESCAPE_RE.finditer(clean):
        name = m.group(1) or m.group(2)
        line_no = clean.count("\n", 0, m.start()) + 1
        line = lines[line_no - 1] if line_no <= len(lines) else ""
        if ALLOW_MARKER in line:
            continue
        gated = False
        # Definition case: when the escape name heads a function definition
        # (parameter list followed by a `{` body), the gate lives inside the
        # body the header introduces — e.g. raw_view() checking its own
        # unchecked_data() result against nullptr.
        open_paren = clean.find("(", m.start())
        close_paren = matching_close_paren(clean, open_paren)
        if close_paren >= 0:
            j = close_paren + 1
            while j < len(clean) and clean[j] in " \t\r\n":
                j += 1
            if j < len(clean) and clean[j] == "{":
                body = next((p for p in pairs if p[0] == j), None)
                if body and GATE_EVIDENCE_RE.search(clean, j, body[1]):
                    gated = True
        if not gated:
            for open_brace, close_brace in enclosing_scopes(pairs, m.start()):
                lo = scope_with_header(clean, open_brace)
                if STOP_SCOPE_RE.search(clean, lo, open_brace):
                    break  # namespace/class scope: sibling functions live here
                if GATE_EVIDENCE_RE.search(clean, lo, close_brace):
                    gated = True
                    break
        if gated:
            continue
        findings.append(finding(
            path, line_no, "escape-gate",
            f"raw-span escape {name}() with no tile/warpfast gate evidence "
            "in any enclosing scope; check the unwrapped result against "
            "nullptr/empty() or test the gate explicitly",
        ))
    return findings


def kernel_family(name: str) -> str:
    """Strip a per-pass ``(digits)`` suffix (or a trailing ``(`` left by an
    intern_name prefix), mirroring simgpu::find_footprint's fallback."""
    return PASS_SUFFIX_RE.sub("", name)


def launched_kernel_names(text: str):
    """Kernel-name spellings launched by one file: ``{family: line}``.

    Collects every string literal inside a ``LaunchConfig{...}`` braced
    initializer (ternary alternatives included) and every string prefix
    passed to ``intern_name(`` (per-pass families end in ``(`` and resolve
    to the bare family name).
    """
    clean = strip_comments_and_strings(text, keep_strings=True)
    names = {}
    for m in LAUNCHCFG_RE.finditer(clean):
        i = clean.find("{", m.end())
        # Only a braced initializer directly after the type (possibly with a
        # variable name between) counts; give up past a statement boundary.
        if i < 0 or ";" in clean[m.end() : i]:
            continue
        depth = 0
        j = i
        while j < len(clean):
            if clean[j] == "{":
                depth += 1
            elif clean[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        for sm in STRING_RE.finditer(clean, i, j):
            family = kernel_family(sm.group(1))
            if family:
                line_no = clean.count("\n", 0, sm.start()) + 1
                names.setdefault(family, line_no)
    for m in INTERN_RE.finditer(clean):
        family = kernel_family(m.group(1))
        if family:
            line_no = clean.count("\n", 0, m.start()) + 1
            names.setdefault(family, line_no)
    return names


def registered_footprint_names(text: str):
    """Kernel names registered via ``register_footprint({"name", ...})``."""
    clean = strip_comments_and_strings(text, keep_strings=True)
    return {m.group(1) for m in REGISTER_RE.finditer(clean)}


def source_files(root: pathlib.Path):
    return sorted(root.rglob("*.hpp")) + sorted(root.rglob("*.cpp"))


def check_footprints(lint_roots, registry_root: pathlib.Path):
    """Flag launched kernel names with no footprint registration anywhere
    under ``registry_root``."""
    registered = set()
    for path in source_files(registry_root):
        registered |= registered_footprint_names(path.read_text())
    findings = []
    for root in lint_roots:
        for path in source_files(root):
            for name, line in sorted(
                launched_kernel_names(path.read_text()).items()
            ):
                if name not in registered:
                    findings.append(finding(
                        str(path), line, "missing-footprint",
                        f"kernel '{name}' is launched but has no "
                        "register_footprint({\"" + name + "\", ...}) "
                        "registration; without one it is invisible to the "
                        "launch-time contract check and the plan auditor",
                    ))
    return findings


def lint_tree(root: pathlib.Path):
    findings = []
    for path in source_files(root):
        findings.extend(lint_text(path.read_text(), str(path)))
    return findings


BAD_SAMPLE = """
void f(simgpu::Device& dev, simgpu::DeviceBuffer<float> buf) {
  simgpu::launch(dev, {"bad", 1, 32}, [=](simgpu::BlockCtx& ctx) {
    buf.data()[0] = 1.0f;            // bypasses accounting
    auto s = buf.host_span();        // ditto
  });
}
"""

GOOD_SAMPLE = """
void g(simgpu::Device& dev, simgpu::DeviceBuffer<float> buf) {
  simgpu::launch(dev, {"good", 1, 32}, [=](simgpu::BlockCtx& ctx) {
    ctx.store(buf, 0, ctx.load(buf, 1));  // string red herring: ".data()"
  });
  buf.data()[0] = 1.0f;  // host-side, outside the launch: allowed
  std::vector<float> host(4);
  use(host.data());
}
"""

ALLOWED_SAMPLE = """
void h(simgpu::Device& dev, simgpu::DeviceBuffer<float> buf) {
  simgpu::launch(dev, {"waived", 1, 32}, [=](simgpu::BlockCtx& ctx) {
    buf.data()[0] = 1.0f;  // lint:allow-raw-access
  });
}
"""


BAD_ESCAPE_SAMPLE = """
void leak(simgpu::SharedSpan<float> s) {
  float* p = s.unchecked_data();
  p[0] = 1.0f;  // never checked, no gate in sight
  auto rv = raw_view(s);
  use(rv);
}
"""

GOOD_ESCAPE_SAMPLE = """
void gated(simgpu::SharedSpan<float> s) {
  float* p = s.unchecked_data();
  if (p != nullptr) p[0] = 1.0f;
  const auto rk = raw_view(s);
  if (!rk.empty()) use(rk);
  if (ctx.warpfast_enabled()) {
    use(raw_view(s).data());  // explicit gate right above
  }
}
"""

# The old fixed-window heuristic accepted this: the escape in leak() has no
# gate, but a *neighboring* function a few lines below checks a pointer
# against nullptr.  Scope-aware search must still flag leak().
NEIGHBOR_GATE_SAMPLE = """
void leak(simgpu::SharedSpan<float> s) {
  float* p = s.unchecked_data();
  p[0] = 1.0f;
}

void unrelated(float* q) {
  if (q != nullptr) q[0] = 2.0f;
}
"""

# A definition whose body gates its own escape result is clean: the body the
# header introduces counts as a search scope.
DEFINITION_GATE_SAMPLE = """
template <SortableView V>
std::span<typename V::element_type> raw_view(const V& v) {
  auto* p = v.unchecked_data();
  if (p == nullptr) return {};
  return {p, v.size()};
}
"""

# Evidence inside an enclosing *namespace* scope must not vouch — that is
# exactly where sibling functions live.
NAMESPACE_GATE_SAMPLE = """
namespace topk {

void leak(simgpu::SharedSpan<float> s) {
  use(raw_view(s));
}

void sibling(float* q) {
  if (q != nullptr) q[0] = 2.0f;
}

}  // namespace topk
"""

# Evidence in an enclosing scope several nesting levels out still counts.
NESTED_GATE_SAMPLE = """
void nested(simgpu::SharedSpan<float> s, bool on) {
  float* p = s.unchecked_data();
  for (int i = 0; i < 4; ++i) {
    if (on) {
      use(raw_view(s));
    }
  }
  if (p != nullptr) use(p);
}
"""


BAD_RUN_SAMPLE = """
template <typename T>
void foo_run(simgpu::Device& dev, const FooPlan<T>& plan,
             simgpu::Workspace& ws) {
  auto scratch = dev.alloc<float>(plan.n);       // hot-path allocation
  auto zeroed = dev.alloc_zero<int>(4, "hist");  // ditto
}
"""

GOOD_RUN_SAMPLE = """
template <typename T>
FooPlan<T> foo_plan(const Shape& s, simgpu::DeviceSpec const& spec,
                    simgpu::WorkspaceLayout& layout) {
  FooPlan<T> p;
  p.seg = layout.add<float>("foo scratch", s.n);
  return p;
}

template <typename T>
void foo_run(simgpu::Device& dev, const FooPlan<T>& plan,
             simgpu::Workspace& ws) {
  auto scratch = ws.get<float>(plan.seg);
  other_run(dev, plan, ws);  // calling a sibling run() is not a definition
}

// Legacy one-shot wrapper: allocates freely, not a *_run body.
template <typename T>
SelectResult foo_select(simgpu::Device& dev, std::span<const T> in) {
  auto buf = dev.alloc<T>(in.size());
  simgpu::Workspace ws(dev);
  return run_it(dev, buf, ws);
}
"""

ALLOWED_RUN_SAMPLE = """
void bar_run(simgpu::Device& dev) {
  auto dbg = dev.alloc<float>(1);  // lint:allow-run-alloc
}
"""

FOOTPRINT_SAMPLE = """
void registered_and_not(simgpu::Device& dev) {
  simgpu::register_footprint({"Registered", {}});
  simgpu::LaunchConfig a{"Registered", 1, 32};
  simgpu::LaunchConfig b{"Registered(3)", 1, 32};   // family resolves
  simgpu::LaunchConfig c{cond ? "Registered" : "Orphan", 1, 32};
  const auto fam = simgpu::intern_name("OrphanFamily(" + std::to_string(p));
  // Strings in comments never count: LaunchConfig x{"CommentKernel", 1, 1};
}
"""


def self_test() -> int:
    def fail(msg):
        print(f"self-test FAILED: {msg}")
        return 1

    bad = lint_text(BAD_SAMPLE, "<bad>")
    if len(bad) != 2:
        return fail(f"expected 2 findings in BAD_SAMPLE, got {len(bad)}: {bad}")
    good = lint_text(GOOD_SAMPLE, "<good>")
    if good:
        return fail(f"false positives in GOOD_SAMPLE: {good}")
    allowed = lint_text(ALLOWED_SAMPLE, "<allowed>")
    if allowed:
        return fail(f"marker not honoured: {allowed}")
    bad_escape = lint_text(BAD_ESCAPE_SAMPLE, "<bad-escape>")
    if len(bad_escape) != 2:
        return fail(f"expected 2 findings in BAD_ESCAPE_SAMPLE, "
                    f"got {len(bad_escape)}: {bad_escape}")
    good_escape = lint_text(GOOD_ESCAPE_SAMPLE, "<good-escape>")
    if good_escape:
        return fail(f"false positives in GOOD_ESCAPE_SAMPLE: {good_escape}")
    neighbor = lint_text(NEIGHBOR_GATE_SAMPLE, "<neighbor-gate>")
    if len(neighbor) != 1 or neighbor[0]["rule"] != "escape-gate":
        return fail("scope awareness: a gate in a neighboring function must "
                    f"not vouch for an ungated escape: {neighbor}")
    definition = lint_text(DEFINITION_GATE_SAMPLE, "<definition-gate>")
    if definition:
        return fail(f"definition-body gate not honoured: {definition}")
    ns = lint_text(NAMESPACE_GATE_SAMPLE, "<namespace-gate>")
    if len(ns) != 1 or ns[0]["rule"] != "escape-gate":
        return fail("namespace-scope evidence must not vouch for an "
                    f"ungated escape: {ns}")
    nested = lint_text(NESTED_GATE_SAMPLE, "<nested-gate>")
    if nested:
        return fail(f"outer-scope gate evidence not honoured: {nested}")
    bad_run = lint_text(BAD_RUN_SAMPLE, "<bad-run>")
    if len(bad_run) != 2:
        return fail(f"expected 2 findings in BAD_RUN_SAMPLE, "
                    f"got {len(bad_run)}: {bad_run}")
    good_run = lint_text(GOOD_RUN_SAMPLE, "<good-run>")
    if good_run:
        return fail(f"false positives in GOOD_RUN_SAMPLE: {good_run}")
    allowed_run = lint_text(ALLOWED_RUN_SAMPLE, "<allowed-run>")
    if allowed_run:
        return fail(f"run-alloc marker not honoured: {allowed_run}")

    launched = launched_kernel_names(FOOTPRINT_SAMPLE)
    if set(launched) != {"Registered", "Orphan", "OrphanFamily"}:
        return fail(f"launched-name extraction wrong: {sorted(launched)}")
    registered = registered_footprint_names(FOOTPRINT_SAMPLE)
    if registered != {"Registered"}:
        return fail(f"registration extraction wrong: {sorted(registered)}")
    missing = {n for n in launched if n not in registered}
    if missing != {"Orphan", "OrphanFamily"}:
        return fail(f"footprint completeness wrong: {sorted(missing)}")

    print("lint_kernels self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("roots", nargs="*", default=["src/topk", "src/core"],
                        help="directories to lint (default: src/topk "
                             "src/core)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON document")
    parser.add_argument("--no-footprints", action="store_true",
                        help="skip the footprint-completeness check")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded linter self-test and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    repo = pathlib.Path(__file__).resolve().parent.parent
    roots = []
    for root in args.roots:
        p = pathlib.Path(root)
        if not p.is_absolute():
            p = repo / p
        if not p.exists():
            print(f"lint_kernels: no such directory: {p}")
            return 2
        roots.append(p)
    findings = []
    for p in roots:
        findings.extend(lint_tree(p))
    if not args.no_footprints:
        findings.extend(check_footprints(roots, repo / "src"))

    if args.json:
        print(json.dumps(
            {"clean": not findings, "count": len(findings),
             "findings": findings}, indent=2))
    else:
        for f in findings:
            print(f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}")
        if findings:
            print(f"lint_kernels: {len(findings)} finding(s)")
        else:
            print("lint_kernels: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
