// topk_audit: static workspace-safety audit of planned selections.
//
// Builds ExecutionPlans for registry algorithms across a shape/K grid and
// runs the static plan auditor (src/verify/plan_audit.hpp) on each — no
// kernels execute, so the whole sweep is plan-time only.  Exit status is 0
// iff every audited plan is clean, which makes the binary a CI gate: the
// plan-audit job runs `topk_audit --all --grid --json` and fails the build
// on any sizing, initialization-order, write-race or lifetime defect in any
// plan the registry can produce.
//
// Usage:
//   topk_audit [--all | --algo KEY] [--grid] [--sharded] [--json] [--verbose]
//
//   --all      audit every concrete kAlgoTable row (default when no --algo)
//   --algo KEY audit one algorithm by registry key ("air", "radixselect", ...)
//   --grid     sweep n = 2^10 .. 2^TOPK_MAX_LOG_N (env, default 18) and
//              k in {1, 16, 256, 2048} (clamped per row), batch in {1, 4};
//              without it, one representative shape per algorithm.  Every
//              shape is audited once per key dtype the row declares
//              (f32/f16/bf16 and, for carrier-generic rows, i32/u32), and
//              streaming rows add large-K shapes up to n=2^24, k=2^20
//   --sharded  additionally audit the plans a sharded multi-device query
//              executes (topk::shard::plan_sharded against a device capped
//              at 2^22 keys): every distinct per-shard plan plus the
//              cross-shard merge plan, including the N = 2^26 shape no
//              single capped device can serve
//   --json     emit one JSON report document on stdout
//   --verbose  print every audited configuration, not just failures

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/topk.hpp"
#include "shard/shard.hpp"
#include "topk/registry.hpp"
#include "verify/plan_audit.hpp"

namespace {

struct Config {
  topk::Algo algo;
  std::string_view key;
  std::size_t batch, n, k;
  bool greatest;
  topk::KeyType dtype;
};

struct Result {
  Config cfg;
  topk::verify::AuditReport report;
  std::string plan_error;  // non-empty when plan_select itself threw
};

std::size_t max_log_n_from_env() {
  if (const char* v = std::getenv("TOPK_MAX_LOG_N")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed >= 10 && parsed <= 30) return static_cast<std::size_t>(parsed);
  }
  return 18;
}

std::vector<Config> build_grid(const topk::AlgoRow& row, bool grid,
                               const simgpu::DeviceSpec& spec) {
  std::vector<Config> configs;
  // Every shape is audited once per key type the registry row declares
  // (the dtype dimension of the grid): the plan's carrier domain and the
  // negate-vs-complement largest-K wrap both depend on it.  Payloads never
  // appear here — the payload gather is a host-side post-pass over the
  // winning indices and plans identically with or without one.
  const auto add = [&](std::size_t batch, std::size_t n, std::size_t k) {
    if (k == 0 || k > n) return;
    if (row.k_limit != 0 && k > row.k_limit) return;
    // Shapes past the per-device capacity can only be served sharded —
    // unless the row is a streaming tier, whose scratch is bounded
    // independent of n; single-device plans for the rest are rejected by
    // design, not defects.
    if (!row.streaming && n > spec.max_select_elems) return;
    for (std::size_t d = 0; d < topk::kNumKeyTypes; ++d) {
      const auto t = static_cast<topk::KeyType>(d);
      if ((row.dtypes & topk::key_type_bit(t)) == 0) continue;
      configs.push_back({row.algo, row.key, batch, n, k, false, t});
      configs.push_back({row.algo, row.key, batch, n, k, true, t});
    }
  };
  if (!grid) {
    add(1, std::size_t{1} << 14, 64);
    add(4, std::size_t{1} << 12, 16);
  } else {
    const std::size_t max_log_n = max_log_n_from_env();
    for (std::size_t log_n = 10; log_n <= max_log_n; log_n += 2) {
      const std::size_t n = std::size_t{1} << log_n;
      for (std::size_t k : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                            std::size_t{2048}}) {
        add(1, n, k);
        add(4, n, k);
      }
    }
  }
  if (row.streaming) {
    // The streaming schedule's distinguishing shapes: multi-chunk rows with
    // K far past the partial-sorting limits, up to the N = 2^24 / K = 2^20
    // scale the large-K acceptance gate executes.
    add(1, std::size_t{1} << 22, std::size_t{1} << 12);
    add(2, std::size_t{1} << 22, std::size_t{1} << 16);
    add(1, std::size_t{1} << 24, std::size_t{1} << 20);
  }
  return configs;
}

std::string config_label(const Config& cfg) {
  std::ostringstream out;
  out << cfg.key << " dtype=" << topk::key_type_name(cfg.dtype)
      << " batch=" << cfg.batch << " n=" << cfg.n << " k=" << cfg.k
      << (cfg.greatest ? " greatest" : " smallest");
  return out.str();
}

/// One audited plan out of a sharded query's plan set.
struct ShardedAudit {
  std::string label;
  topk::verify::AuditReport report;
  std::string plan_error;
};

/// Audit every plan a sharded query would execute, for a sweep of query
/// shapes against a device capped at 2^22 keys — the scale-out scenario
/// (first row: N = 2^26, a shape no single capped device can serve).
std::vector<ShardedAudit> audit_sharded(const simgpu::DeviceSpec& base) {
  simgpu::DeviceSpec spec = base;
  spec.max_select_elems = std::size_t{1} << 22;
  struct SweepRow {
    std::size_t n, k, shards;  // shards == 0: recommend_shards picks
  };
  constexpr SweepRow kSweep[] = {
      {std::size_t{1} << 26, 256, 0},  {std::size_t{1} << 26, 2048, 16},
      {std::size_t{1} << 24, 256, 4},  {std::size_t{1} << 20, 64, 2},
      {std::size_t{1} << 20, 64, 7},   {std::size_t{1} << 20, 2048, 1},
  };
  std::vector<ShardedAudit> out;
  for (const SweepRow& row : kSweep) {
    std::ostringstream shape;
    shape << "n=" << row.n << " k=" << row.k << " shards=";
    if (row.shards == 0) {
      shape << "auto";
    } else {
      shape << row.shards;
    }
    try {
      const topk::shard::ShardedPlan sp = topk::shard::plan_sharded(
          spec, row.n, row.k, row.shards, topk::Algo::kAuto);
      for (const auto& [label, plan] : sp.plans) {
        ShardedAudit a;
        a.label = shape.str() + " :: " + label;
        a.report = topk::verify::audit_plan(plan);
        out.push_back(std::move(a));
      }
    } catch (const std::exception& e) {
      ShardedAudit a;
      a.label = shape.str();
      a.plan_error = e.what();
      out.push_back(std::move(a));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false, grid = false, sharded = false, json = false,
       verbose = false;
  std::string_view algo_key;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--all") {
      all = true;
    } else if (arg == "--grid") {
      grid = true;
    } else if (arg == "--sharded") {
      sharded = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--algo" && i + 1 < argc) {
      algo_key = argv[++i];
    } else {
      std::cerr << "topk_audit: unknown argument '" << arg << "'\n"
                << "usage: topk_audit [--all | --algo KEY] [--grid]"
                   " [--sharded] [--json] [--verbose]\n";
      return 2;
    }
  }
  if (!all && algo_key.empty()) all = true;

  const simgpu::DeviceSpec spec{};  // audit against the default device model
  std::vector<Result> results;
  std::size_t defects = 0, plan_errors = 0;

  for (const topk::AlgoRow& row : topk::kAlgoTable) {
    if (row.plan == nullptr) continue;  // kAuto resolves before planning
    if (!all && row.key != algo_key) continue;
    for (const Config& cfg : build_grid(row, grid, spec)) {
      Result res{cfg, {}, {}};
      try {
        topk::SelectOptions opt;
        opt.greatest = cfg.greatest;
        opt.dtype = cfg.dtype;
        const topk::ExecutionPlan plan =
            topk::plan_select(spec, cfg.batch, cfg.n, cfg.k, cfg.algo, opt);
        res.report = topk::verify::audit_plan(plan);
      } catch (const std::exception& e) {
        res.plan_error = e.what();
      }
      defects += res.report.findings.size();
      plan_errors += res.plan_error.empty() ? 0 : 1;
      results.push_back(std::move(res));
    }
  }

  if (!all && results.empty()) {
    std::cerr << "topk_audit: no registry row matches --algo '" << algo_key
              << "'\n";
    return 2;
  }

  std::vector<ShardedAudit> sharded_results;
  if (sharded) {
    sharded_results = audit_sharded(spec);
    for (const ShardedAudit& a : sharded_results) {
      defects += a.report.findings.size();
      plan_errors += a.plan_error.empty() ? 0 : 1;
    }
  }

  if (json) {
    std::ostringstream out;
    out << "{\"configs\": " << results.size() << ", \"defects\": " << defects
        << ", \"plan_errors\": " << plan_errors << ", \"reports\": [";
    bool first = true;
    for (const Result& res : results) {
      if (!res.plan_error.empty() || !res.report.clean() || verbose) {
        if (!first) out << ", ";
        first = false;
        out << "{\"algo\": \"" << res.cfg.key << "\", \"dtype\": \""
            << topk::key_type_name(res.cfg.dtype)
            << "\", \"batch\": " << res.cfg.batch << ", \"n\": " << res.cfg.n
            << ", \"k\": " << res.cfg.k << ", \"greatest\": "
            << (res.cfg.greatest ? "true" : "false");
        if (!res.plan_error.empty()) {
          out << ", \"plan_error\": \"" << res.plan_error << "\"";
        } else {
          out << ", \"audit\": " << topk::verify::to_json(res.report);
        }
        out << "}";
      }
    }
    out << "]";
    if (!sharded_results.empty()) {
      out << ", \"sharded\": [";
      bool sfirst = true;
      for (const ShardedAudit& a : sharded_results) {
        if (!a.plan_error.empty() || !a.report.clean() || verbose) {
          if (!sfirst) out << ", ";
          sfirst = false;
          out << "{\"plan\": \"" << a.label << "\"";
          if (!a.plan_error.empty()) {
            out << ", \"plan_error\": \"" << a.plan_error << "\"";
          } else {
            out << ", \"audit\": " << topk::verify::to_json(a.report);
          }
          out << "}";
        }
      }
      out << "]";
    }
    out << "}";
    std::cout << out.str() << "\n";
  } else {
    for (const Result& res : results) {
      if (!res.plan_error.empty()) {
        std::cout << "PLAN ERROR " << config_label(res.cfg) << ": "
                  << res.plan_error << "\n";
      } else if (!res.report.clean()) {
        std::cout << "DEFECTS    " << config_label(res.cfg) << "\n";
        for (const topk::verify::Finding& f : res.report.findings) {
          std::cout << "  " << f.to_string() << "\n";
        }
      } else if (verbose) {
        std::cout << "clean      " << config_label(res.cfg) << " ("
                  << res.report.steps_walked << " steps, "
                  << res.report.binds_checked << " binds)\n";
      }
    }
    for (const ShardedAudit& a : sharded_results) {
      if (!a.plan_error.empty()) {
        std::cout << "PLAN ERROR sharded " << a.label << ": " << a.plan_error
                  << "\n";
      } else if (!a.report.clean()) {
        std::cout << "DEFECTS    sharded " << a.label << "\n";
        for (const topk::verify::Finding& f : a.report.findings) {
          std::cout << "  " << f.to_string() << "\n";
        }
      } else if (verbose) {
        std::cout << "clean      sharded " << a.label << " ("
                  << a.report.steps_walked << " steps, "
                  << a.report.binds_checked << " binds)\n";
      }
    }
    std::cout << results.size() + sharded_results.size()
              << " plan(s) audited, " << defects << " defect(s), "
              << plan_errors << " plan error(s)\n";
  }

  return (defects == 0 && plan_errors == 0) ? 0 : 1;
}
